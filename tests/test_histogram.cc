// LatencyHistogram tests: bucketing, percentiles, thread safety.
#include "common/histogram.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace platod2gl {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.PercentileNanos(50), 0u);
}

TEST(HistogramTest, SingleSample) {
  LatencyHistogram h;
  h.Record(1000);  // bucket upper edge 1023
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.PercentileNanos(50), 1023u);
  EXPECT_EQ(h.PercentileNanos(100), 1023u);
}

TEST(HistogramTest, PercentilesSeparateModes) {
  LatencyHistogram h;
  // 90 fast samples (~1 us) and 10 slow ones (~1 ms).
  for (int i = 0; i < 90; ++i) h.Record(1000);
  for (int i = 0; i < 10; ++i) h.Record(1000000);
  EXPECT_LT(h.PercentileNanos(50), 5000u);
  EXPECT_GT(h.PercentileNanos(99), 500000u);
}

TEST(HistogramTest, PercentileMonotone) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 100000; v *= 3) h.Record(v);
  std::uint64_t prev = 0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const std::uint64_t cur = h.PercentileNanos(p);
    EXPECT_GE(cur, prev) << "p" << p;
    prev = cur;
  }
}

TEST(HistogramTest, ZeroSampleGoesToBucketZero) {
  LatencyHistogram h;
  h.Record(0);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.PercentileNanos(100), 0u);
}

TEST(HistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
}

TEST(HistogramTest, ConcurrentRecording) {
  LatencyHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 10000; ++i) h.Record(100 + i % 7);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.Count(), 80000u);  // relaxed atomics lose nothing
}

TEST(HistogramTest, MicrosConversion) {
  LatencyHistogram h;
  h.RecordMicros(1.0);  // 1000 ns
  EXPECT_GE(h.PercentileMicros(100), 1.0);
  EXPECT_LT(h.PercentileMicros(100), 2.1);  // bucket edge 2047 ns
}

}  // namespace
}  // namespace platod2gl
