// LatencyHistogram tests: bucketing, percentiles, thread safety.
#include "common/histogram.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace platod2gl {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.PercentileNanos(50), 0u);
}

TEST(HistogramTest, SingleSample) {
  LatencyHistogram h;
  h.Record(1000);  // bucket upper edge 1023
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.PercentileNanos(50), 1023u);
  EXPECT_EQ(h.PercentileNanos(100), 1023u);
}

TEST(HistogramTest, PercentilesSeparateModes) {
  LatencyHistogram h;
  // 90 fast samples (~1 us) and 10 slow ones (~1 ms).
  for (int i = 0; i < 90; ++i) h.Record(1000);
  for (int i = 0; i < 10; ++i) h.Record(1000000);
  EXPECT_LT(h.PercentileNanos(50), 5000u);
  EXPECT_GT(h.PercentileNanos(99), 500000u);
}

TEST(HistogramTest, PercentileMonotone) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 100000; v *= 3) h.Record(v);
  std::uint64_t prev = 0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const std::uint64_t cur = h.PercentileNanos(p);
    EXPECT_GE(cur, prev) << "p" << p;
    prev = cur;
  }
}

TEST(HistogramTest, ZeroSampleGoesToBucketZero) {
  LatencyHistogram h;
  h.Record(0);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.PercentileNanos(100), 0u);
}

TEST(HistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
}

TEST(HistogramTest, ConcurrentRecording) {
  LatencyHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 10000; ++i) h.Record(100 + i % 7);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.Count(), 80000u);  // relaxed atomics lose nothing
}

TEST(HistogramTest, MicrosConversion) {
  LatencyHistogram h;
  h.RecordMicros(1.0);  // 1000 ns
  EXPECT_GE(h.PercentileMicros(100), 1.0);
  EXPECT_LT(h.PercentileMicros(100), 2.1);  // bucket edge 2047 ns
}

TEST(HistogramTest, SnapshotIsConsistentPointInTime) {
  LatencyHistogram h;
  h.Record(100);
  h.Record(100000);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.Count(), 2u);
  // Mutating the live histogram after the snapshot leaves it untouched.
  for (int i = 0; i < 50; ++i) h.Record(1);
  EXPECT_EQ(snap.Count(), 2u);
  EXPECT_EQ(h.Count(), 52u);
}

TEST(HistogramTest, SnapshotPercentileMatchesLive) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 100000; v *= 3) h.Record(v);
  const HistogramSnapshot snap = h.Snapshot();
  for (double p : {10.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(snap.PercentileNanos(p), h.PercentileNanos(p)) << "p" << p;
  }
}

TEST(HistogramTest, DeltaSinceIsolatesWindow) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(1000);  // window 1: ~1 us
  const HistogramSnapshot base = h.Snapshot();
  for (int i = 0; i < 100; ++i) h.Record(1000000);  // window 2: ~1 ms
  const HistogramSnapshot now = h.Snapshot();
  const HistogramSnapshot delta = now.DeltaSince(base);
  EXPECT_EQ(delta.Count(), 100u);
  // The delta must only see window 2's slow samples — the cumulative
  // histogram's p50 would still be fast.
  EXPECT_GT(delta.PercentileNanos(50), 500000u);
  EXPECT_LT(h.PercentileNanos(50), 5000u);
}

TEST(HistogramTest, DeltaSinceEmptyWindow) {
  LatencyHistogram h;
  h.Record(42);
  const HistogramSnapshot snap = h.Snapshot();
  const HistogramSnapshot delta = snap.DeltaSince(snap);
  EXPECT_EQ(delta.Count(), 0u);
  EXPECT_EQ(delta.PercentileNanos(99), 0u);
}

TEST(HistogramTest, InterpolationWithinBucket) {
  // 1024 samples all landing in bucket [1024, 2047]: percentiles should
  // interpolate linearly across the bucket instead of pinning to the
  // upper edge.
  LatencyHistogram h;
  for (int i = 0; i < 1024; ++i) h.Record(1500);
  const std::uint64_t p10 = h.PercentileNanos(10);
  const std::uint64_t p50 = h.PercentileNanos(50);
  const std::uint64_t p100 = h.PercentileNanos(100);
  EXPECT_GE(p10, 1024u);
  EXPECT_LT(p10, p50);
  EXPECT_LT(p50, p100);
  EXPECT_EQ(p100, 2047u);
  // p50 lands near the middle of the bucket.
  EXPECT_GT(p50, 1300u);
  EXPECT_LT(p50, 1800u);
}

TEST(HistogramTest, InterpolationPreservesSingleSampleEdge) {
  // With one sample, every percentile is that sample's bucket upper
  // edge — the interpolation's frac = 1 endpoint (SingleSample above
  // depends on this).
  LatencyHistogram h;
  h.Record(1000);
  EXPECT_EQ(h.PercentileNanos(1), 1023u);
  EXPECT_EQ(h.PercentileNanos(99), 1023u);
}

}  // namespace
}  // namespace platod2gl
