// Negative suite for the wire codec: every decoder must survive
// truncation, bit flips, absurd length prefixes, trailing garbage and
// plain random bytes without crashing, over-reading or over-allocating
// (run under ASan/UBSan in CI). Where a mutation happens to stay
// structurally valid, the decoded value must round-trip cleanly — decode
// is either a hard reject or a full parse, never a partial one.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "dist/wire.h"

namespace platod2gl {
namespace {

using wire::DecodeSampleRequest;
using wire::DecodeSampleResponse;
using wire::DecodeUpdateBatch;
using wire::EncodeSampleRequest;
using wire::EncodeSampleResponse;
using wire::EncodeUpdateBatch;
using wire::SampleRequest;

SampleRequest MakeRequest() {
  SampleRequest req;
  req.edge_type = 2;
  req.fanout = 7;
  req.weighted = true;
  req.seeds = {1, 99, 12345678901234ULL, 0};
  return req;
}

NeighborBatch MakeResponse() {
  NeighborBatch b;
  b.neighbors = {5, 6, 7, 100, 101};
  b.offsets = {0, 3, 3, 5};  // middle seed is empty
  return b;
}

std::vector<EdgeUpdate> MakeUpdates() {
  return {{UpdateKind::kInsert, Edge{1, 2, 1.5, 0}},
          {UpdateKind::kInPlaceUpdate, Edge{3, 4, -2.0, 1}},
          {UpdateKind::kDelete, Edge{5, 6, 0.0, 0}}};
}

// Decode helpers with a uniform signature so one sweep drives all three.
bool TryRequest(const std::string& bytes) {
  SampleRequest out;
  return DecodeSampleRequest(bytes, &out);
}
bool TryResponse(const std::string& bytes) {
  NeighborBatch out;
  return DecodeSampleResponse(bytes, &out);
}
bool TryUpdates(const std::string& bytes) {
  std::vector<EdgeUpdate> out;
  return DecodeUpdateBatch(bytes, &out);
}

// --- Truncation: every strict prefix must be rejected ----------------------

TEST(WireFuzzTest, EveryTruncationOfARequestIsRejected) {
  const std::string full = EncodeSampleRequest(MakeRequest());
  for (std::size_t n = 0; n < full.size(); ++n) {
    EXPECT_FALSE(TryRequest(full.substr(0, n))) << "prefix length " << n;
  }
  EXPECT_TRUE(TryRequest(full)) << "sanity: the untruncated message decodes";
}

TEST(WireFuzzTest, EveryTruncationOfAResponseIsRejected) {
  const std::string full = EncodeSampleResponse(MakeResponse());
  for (std::size_t n = 0; n < full.size(); ++n) {
    EXPECT_FALSE(TryResponse(full.substr(0, n))) << "prefix length " << n;
  }
  EXPECT_TRUE(TryResponse(full));
}

TEST(WireFuzzTest, EveryTruncationOfAnUpdateBatchIsRejected) {
  const std::string full = EncodeUpdateBatch(MakeUpdates());
  for (std::size_t n = 0; n < full.size(); ++n) {
    EXPECT_FALSE(TryUpdates(full.substr(0, n))) << "prefix length " << n;
  }
  EXPECT_TRUE(TryUpdates(full));
}

// --- Trailing garbage: decoders demand exact consumption -------------------

TEST(WireFuzzTest, TrailingGarbageIsRejected) {
  for (const char extra : {'\0', 'S', '\xFF'}) {
    EXPECT_FALSE(TryRequest(EncodeSampleRequest(MakeRequest()) + extra));
    EXPECT_FALSE(TryResponse(EncodeSampleResponse(MakeResponse()) + extra));
    EXPECT_FALSE(TryUpdates(EncodeUpdateBatch(MakeUpdates()) + extra));
  }
}

// --- Absurd counts: rejected before any allocation -------------------------

template <typename T>
void Append(std::string* s, T v) {
  s->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

TEST(WireFuzzTest, AbsurdCountsAreRejectedWithoutAllocating) {
  // count = 0xFFFFFFFF with a near-empty tail: the arithmetic bounds check
  // must fire before any resize/reserve (a naive decoder would attempt a
  // multi-GB allocation here and ASan/OOM-kill the suite).
  {
    std::string bytes = "S";
    Append<std::uint32_t>(&bytes, 0);  // edge_type
    Append<std::uint32_t>(&bytes, 5);  // fanout
    Append<std::uint8_t>(&bytes, 1);   // weighted
    Append<std::uint32_t>(&bytes, 0xFFFFFFFFu);
    bytes += "xx";
    EXPECT_FALSE(TryRequest(bytes));
  }
  {
    std::string bytes = "R";
    Append<std::uint32_t>(&bytes, 0xFFFFFFFFu);  // seed count
    bytes += "xx";
    EXPECT_FALSE(TryResponse(bytes));
  }
  {
    // Plausible seed count, absurd per-seed length prefix.
    std::string bytes = "R";
    Append<std::uint32_t>(&bytes, 1);
    Append<std::uint32_t>(&bytes, 0xFFFFFFFFu);  // len of seed 0
    bytes += "xxxxxxxx";
    EXPECT_FALSE(TryResponse(bytes));
  }
  {
    std::string bytes = "U";
    Append<std::uint32_t>(&bytes, 0xFFFFFFFFu);
    bytes += "xx";
    EXPECT_FALSE(TryUpdates(bytes));
  }
}

TEST(WireFuzzTest, WrongTagAndEmptyBufferAreRejected) {
  EXPECT_FALSE(TryRequest(""));
  EXPECT_FALSE(TryResponse(""));
  EXPECT_FALSE(TryUpdates(""));
  const std::string req = EncodeSampleRequest(MakeRequest());
  EXPECT_FALSE(TryResponse(req)) << "request bytes are not a response";
  EXPECT_FALSE(TryUpdates(req));
}

// --- Bit-flip sweeps --------------------------------------------------------
//
// Flipping any single bit must either be rejected or produce a message
// that still round-trips exactly (a payload-byte flip changes a vertex id
// or a weight — structurally fine by design; see docs/fault_tolerance.md
// for why payload-level integrity is out of scope for the wire format).

template <typename DecodeFn, typename EncodeFn, typename Msg>
void BitFlipSweep(const std::string& clean, DecodeFn decode, EncodeFn encode,
                  Msg* scratch) {
  std::size_t accepted = 0;
  for (std::size_t byte = 0; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = clean;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      if (!decode(mutated, scratch)) continue;
      ++accepted;
      // Accepted ⇒ fully parsed: re-encoding must reproduce the mutated
      // bytes except where the codec canonicalises (the weighted bool),
      // so sizes always match and a second decode must agree.
      const std::string re = encode(*scratch);
      ASSERT_EQ(re.size(), mutated.size())
          << "byte " << byte << " bit " << bit
          << ": partial parse slipped through";
      Msg again;
      ASSERT_TRUE(decode(re, &again));
    }
  }
  // Sanity: some payload flips survive (the sweep actually exercised the
  // accept path, not just the reject path).
  EXPECT_GT(accepted, 0u);
}

TEST(WireFuzzTest, RequestSurvivesFullBitFlipSweep) {
  SampleRequest scratch;
  BitFlipSweep(EncodeSampleRequest(MakeRequest()), DecodeSampleRequest,
               EncodeSampleRequest, &scratch);
}

TEST(WireFuzzTest, ResponseSurvivesFullBitFlipSweep) {
  NeighborBatch scratch;
  BitFlipSweep(EncodeSampleResponse(MakeResponse()), DecodeSampleResponse,
               EncodeSampleResponse, &scratch);
}

TEST(WireFuzzTest, UpdateBatchSurvivesFullBitFlipSweep) {
  std::vector<EdgeUpdate> scratch;
  BitFlipSweep(EncodeUpdateBatch(MakeUpdates()), DecodeUpdateBatch,
               EncodeUpdateBatch, &scratch);
}

// --- Random garbage ---------------------------------------------------------

TEST(WireFuzzTest, RandomGarbageNeverCrashesDecoders) {
  SplitMix64 rng(0xF022EDBEEFULL);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = rng.Next() % 64;
    std::string bytes;
    bytes.reserve(len + 1);
    // Start with a real tag half the time so the sweep gets past byte 0.
    if (rng.Next() & 1) bytes.push_back("SRU"[rng.Next() % 3]);
    while (bytes.size() < len) {
      bytes.push_back(static_cast<char>(rng.Next()));
    }
    // Must not crash, over-read (ASan) or over-allocate; accepts are fine
    // when the garbage happens to be well-formed.
    TryRequest(bytes);
    TryResponse(bytes);
    TryUpdates(bytes);
  }
}

TEST(WireFuzzTest, EmptyMessagesRoundTrip) {
  // Degenerate-but-valid messages stay valid: no seeds, no updates.
  SampleRequest req;
  SampleRequest req2;
  ASSERT_TRUE(DecodeSampleRequest(EncodeSampleRequest(req), &req2));
  EXPECT_EQ(req2, req);

  NeighborBatch empty;
  NeighborBatch out;
  ASSERT_TRUE(DecodeSampleResponse(EncodeSampleResponse(empty), &out));
  EXPECT_EQ(out.NumSeeds(), 0u);

  std::vector<EdgeUpdate> none;
  std::vector<EdgeUpdate> decoded;
  ASSERT_TRUE(DecodeUpdateBatch(EncodeUpdateBatch(none), &decoded));
  EXPECT_TRUE(decoded.empty());
}

// --- Replication messages (versioned; see docs/replication.md) -------------

using wire::DecodeRepAck;
using wire::DecodeRepDigest;
using wire::DecodeRepLogAppend;
using wire::DecodeRepSnapshot;
using wire::DecodeResult;
using wire::EncodeRepAck;
using wire::EncodeRepDigest;
using wire::EncodeRepLogAppend;
using wire::EncodeRepSnapshot;
using wire::RepAck;
using wire::RepDigest;
using wire::RepLogAppend;
using wire::RepSnapshot;

RepLogAppend MakeAppend() {
  RepLogAppend msg;
  msg.shard = 3;
  msg.entries = {
      {11, {UpdateKind::kInsert, Edge{1, 2, 1.5, 0}}},
      {12, {UpdateKind::kInPlaceUpdate, Edge{3, 4, -2.0, 1}}},
      {13, {UpdateKind::kDelete, Edge{5, 6, 0.0, 0}}}};
  return msg;
}

RepAck MakeAck() { return RepAck{2, 1, 987654321ULL}; }

RepDigest MakeDigest() {
  RepDigest msg;
  msg.shard = 1;
  msg.through_seq = 42;
  msg.bucket_edges = {3, 0, 17, 2};
  msg.bucket_crcs = {0xDEADBEEF, 0, 0x12345678, 0xFF};
  return msg;
}

RepSnapshot MakeSnapshot() {
  RepSnapshot msg;
  msg.shard = 0;
  msg.covered_seq = 100;
  msg.checkpoint = "PD2Gfake-checkpoint-bytes";  // payload is opaque here
  return msg;
}

DecodeResult TryAppend(const std::string& bytes) {
  RepLogAppend out;
  return DecodeRepLogAppend(bytes, &out);
}
DecodeResult TryAck(const std::string& bytes) {
  RepAck out;
  return DecodeRepAck(bytes, &out);
}
DecodeResult TryDigest(const std::string& bytes) {
  RepDigest out;
  return DecodeRepDigest(bytes, &out);
}
DecodeResult TrySnapshot(const std::string& bytes) {
  RepSnapshot out;
  return DecodeRepSnapshot(bytes, &out);
}

TEST(RepWireFuzzTest, CleanMessagesRoundTripExactly) {
  RepLogAppend a;
  ASSERT_EQ(DecodeRepLogAppend(EncodeRepLogAppend(MakeAppend()), &a),
            DecodeResult::kOk);
  EXPECT_EQ(a, MakeAppend());
  RepAck k;
  ASSERT_EQ(DecodeRepAck(EncodeRepAck(MakeAck()), &k), DecodeResult::kOk);
  EXPECT_EQ(k, MakeAck());
  RepDigest d;
  ASSERT_EQ(DecodeRepDigest(EncodeRepDigest(MakeDigest()), &d),
            DecodeResult::kOk);
  EXPECT_EQ(d, MakeDigest());
  RepSnapshot s;
  ASSERT_EQ(DecodeRepSnapshot(EncodeRepSnapshot(MakeSnapshot()), &s),
            DecodeResult::kOk);
  EXPECT_EQ(s, MakeSnapshot());
}

TEST(RepWireFuzzTest, EveryTruncationIsRejected) {
  const std::string msgs[] = {
      EncodeRepLogAppend(MakeAppend()), EncodeRepAck(MakeAck()),
      EncodeRepDigest(MakeDigest()), EncodeRepSnapshot(MakeSnapshot())};
  DecodeResult (*decoders[])(const std::string&) = {TryAppend, TryAck,
                                                    TryDigest, TrySnapshot};
  for (int m = 0; m < 4; ++m) {
    for (std::size_t n = 0; n < msgs[m].size(); ++n) {
      EXPECT_NE(decoders[m](msgs[m].substr(0, n)), DecodeResult::kOk)
          << "message " << m << " prefix length " << n;
    }
    EXPECT_EQ(decoders[m](msgs[m]), DecodeResult::kOk) << "message " << m;
  }
}

TEST(RepWireFuzzTest, TrailingGarbageIsRejected) {
  for (const char extra : {'\0', 'L', '\xFF'}) {
    EXPECT_NE(TryAppend(EncodeRepLogAppend(MakeAppend()) + extra),
              DecodeResult::kOk);
    EXPECT_NE(TryAck(EncodeRepAck(MakeAck()) + extra), DecodeResult::kOk);
    EXPECT_NE(TryDigest(EncodeRepDigest(MakeDigest()) + extra),
              DecodeResult::kOk);
    EXPECT_NE(TrySnapshot(EncodeRepSnapshot(MakeSnapshot()) + extra),
              DecodeResult::kOk);
  }
}

TEST(RepWireFuzzTest, AbsurdCountsAreRejectedWithoutAllocating) {
  {  // entry count far beyond the remaining bytes
    std::string bytes = "L";
    Append<std::uint8_t>(&bytes, wire::kReplicationWireVersion);
    Append<std::uint32_t>(&bytes, 3);            // shard
    Append<std::uint32_t>(&bytes, 0xFFFFFFFFu);  // count
    bytes += "xx";
    EXPECT_EQ(TryAppend(bytes), DecodeResult::kMalformed);
  }
  {  // digest bucket count
    std::string bytes = "G";
    Append<std::uint8_t>(&bytes, wire::kReplicationWireVersion);
    Append<std::uint32_t>(&bytes, 1);
    Append<std::uint64_t>(&bytes, 42);
    Append<std::uint32_t>(&bytes, 0xFFFFFFFFu);
    bytes += "xx";
    EXPECT_EQ(TryDigest(bytes), DecodeResult::kMalformed);
  }
  {  // snapshot length prefix
    std::string bytes = "B";
    Append<std::uint8_t>(&bytes, wire::kReplicationWireVersion);
    Append<std::uint32_t>(&bytes, 0);
    Append<std::uint64_t>(&bytes, 100);
    Append<std::uint32_t>(&bytes, 0xFFFFFFFFu);
    bytes += "xx";
    EXPECT_EQ(TrySnapshot(bytes), DecodeResult::kMalformed);
  }
}

TEST(RepWireFuzzTest, UnknownVersionIsNegotiationFailureNotCorruption) {
  // An old/new-format peer must surface as kUnsupportedVersion (mapped to
  // Status::Unimplemented by the manager), strictly distinct from
  // kMalformed — so operators see "upgrade the peer", not "data loss".
  for (const std::uint8_t v : {std::uint8_t{0}, std::uint8_t{2},
                               std::uint8_t{99}, std::uint8_t{255}}) {
    EXPECT_EQ(TryAppend(EncodeRepLogAppend(MakeAppend(), v)),
              DecodeResult::kUnsupportedVersion)
        << "version " << int{v};
    EXPECT_EQ(TryAck(EncodeRepAck(MakeAck(), v)),
              DecodeResult::kUnsupportedVersion);
    EXPECT_EQ(TryDigest(EncodeRepDigest(MakeDigest(), v)),
              DecodeResult::kUnsupportedVersion);
    EXPECT_EQ(TrySnapshot(EncodeRepSnapshot(MakeSnapshot(), v)),
              DecodeResult::kUnsupportedVersion);
  }
  // A wrong tag is NOT a version problem, even with a plausible version
  // byte in position 1.
  EXPECT_EQ(TryAppend(EncodeRepAck(MakeAck())), DecodeResult::kMalformed);
  EXPECT_EQ(TryAck(EncodeRepLogAppend(MakeAppend())),
            DecodeResult::kMalformed);
  EXPECT_EQ(TryAppend(""), DecodeResult::kMalformed);
}

TEST(RepWireFuzzTest, NonContiguousEntriesAreRejected) {
  // The decoder pins the transport invariant the replica's contiguity
  // check relies on: entries within one message are strictly sequential.
  RepLogAppend gap = MakeAppend();
  gap.entries[2].seq = 99;
  RepLogAppend out;
  EXPECT_EQ(DecodeRepLogAppend(EncodeRepLogAppend(gap), &out),
            DecodeResult::kMalformed);
}

template <typename DecodeFn, typename EncodeFn, typename Msg>
void VersionedBitFlipSweep(const std::string& clean, DecodeFn decode,
                           EncodeFn encode, Msg* scratch,
                           std::uint8_t current_version) {
  std::size_t accepted = 0;
  for (std::size_t byte = 0; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = clean;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      const DecodeResult r = decode(mutated, scratch);
      if (byte == 1) {
        // The version byte: any flip must be a clean negotiation failure.
        ASSERT_EQ(r, DecodeResult::kUnsupportedVersion)
            << "bit " << bit << " of the version byte";
        continue;
      }
      if (r != DecodeResult::kOk) continue;
      ++accepted;
      const std::string re = encode(*scratch, current_version);
      ASSERT_EQ(re.size(), mutated.size())
          << "byte " << byte << " bit " << bit
          << ": partial parse slipped through";
      Msg again;
      ASSERT_EQ(decode(re, &again), DecodeResult::kOk);
    }
  }
  EXPECT_GT(accepted, 0u);
}

template <typename DecodeFn, typename EncodeFn, typename Msg>
void RepBitFlipSweep(const std::string& clean, DecodeFn decode,
                     EncodeFn encode, Msg* scratch) {
  VersionedBitFlipSweep(clean, decode, encode, scratch,
                        wire::kReplicationWireVersion);
}

TEST(RepWireFuzzTest, AppendSurvivesFullBitFlipSweep) {
  RepLogAppend scratch;
  RepBitFlipSweep(EncodeRepLogAppend(MakeAppend()), DecodeRepLogAppend,
                  EncodeRepLogAppend, &scratch);
}

TEST(RepWireFuzzTest, AckSurvivesFullBitFlipSweep) {
  RepAck scratch;
  RepBitFlipSweep(EncodeRepAck(MakeAck()), DecodeRepAck, EncodeRepAck,
                  &scratch);
}

TEST(RepWireFuzzTest, DigestSurvivesFullBitFlipSweep) {
  RepDigest scratch;
  RepBitFlipSweep(EncodeRepDigest(MakeDigest()), DecodeRepDigest,
                  EncodeRepDigest, &scratch);
}

TEST(RepWireFuzzTest, SnapshotSurvivesFullBitFlipSweep) {
  RepSnapshot scratch;
  RepBitFlipSweep(EncodeRepSnapshot(MakeSnapshot()), DecodeRepSnapshot,
                  EncodeRepSnapshot, &scratch);
}

// --- Serving messages (versioned; see docs/serving.md) ----------------------

using wire::DecodeQueryRequest;
using wire::DecodeQueryResponse;
using wire::EncodeQueryRequest;
using wire::EncodeQueryResponse;

serve::QueryRequest MakeQuery() {
  serve::QueryRequest req;
  req.tenant = 3;
  req.request_id = 1234;
  req.rng_seed = 0xABCDEF;
  req.trace.trace_id = 0xDEADBEEFCAFEULL;
  req.trace.parent_span = 42;
  req.trace.flags = obs::TraceContext::kSampled;
  req.seeds = {1, 99, 12345678901234ULL};
  req.plan.Sample(/*fanout=*/8, /*weighted=*/true)
      .NegativeSample(/*count=*/16, /*range_lo=*/0, /*range_hi=*/1000,
                      /*input=*/0)
      .Gather(/*input=*/0);
  return req;
}

serve::QueryResponse MakeQueryResponse() {
  serve::QueryResponse resp;
  resp.tenant = 3;
  resp.request_id = 1234;
  resp.status = serve::RequestStatus::kDegraded;
  resp.epoch = 7;
  resp.trace_id = 0xDEADBEEFCAFEULL;
  serve::StageOutput frontier;
  frontier.ids = {5, 6, 7, 100, 101};
  frontier.offsets = {0, 3, 3, 5};  // middle seed empty
  serve::StageOutput feats;
  feats.feature_dim = 2;
  feats.features = {1.0f, -0.5f, 0.0f, 2.25f};
  resp.stages = {frontier, feats};
  return resp;
}

DecodeResult TryQuery(const std::string& bytes) {
  serve::QueryRequest out;
  return DecodeQueryRequest(bytes, &out);
}
DecodeResult TryQueryResponse(const std::string& bytes) {
  serve::QueryResponse out;
  return DecodeQueryResponse(bytes, &out);
}

TEST(ServeWireFuzzTest, CleanMessagesRoundTripExactly) {
  serve::QueryRequest req;
  ASSERT_EQ(DecodeQueryRequest(EncodeQueryRequest(MakeQuery()), &req),
            DecodeResult::kOk);
  EXPECT_EQ(req, MakeQuery());
  serve::QueryResponse resp;
  ASSERT_EQ(
      DecodeQueryResponse(EncodeQueryResponse(MakeQueryResponse()), &resp),
      DecodeResult::kOk);
  EXPECT_EQ(resp, MakeQueryResponse());
}

TEST(ServeWireFuzzTest, EveryTruncationIsRejected) {
  const std::string msgs[] = {EncodeQueryRequest(MakeQuery()),
                              EncodeQueryResponse(MakeQueryResponse())};
  DecodeResult (*decoders[])(const std::string&) = {TryQuery,
                                                    TryQueryResponse};
  for (int m = 0; m < 2; ++m) {
    for (std::size_t n = 0; n < msgs[m].size(); ++n) {
      EXPECT_NE(decoders[m](msgs[m].substr(0, n)), DecodeResult::kOk)
          << "message " << m << " prefix length " << n;
    }
    EXPECT_EQ(decoders[m](msgs[m]), DecodeResult::kOk) << "message " << m;
  }
}

TEST(ServeWireFuzzTest, TrailingGarbageIsRejected) {
  for (const char extra : {'\0', 'Q', '\xFF'}) {
    EXPECT_NE(TryQuery(EncodeQueryRequest(MakeQuery()) + extra),
              DecodeResult::kOk);
    EXPECT_NE(
        TryQueryResponse(EncodeQueryResponse(MakeQueryResponse()) + extra),
        DecodeResult::kOk);
  }
}

TEST(ServeWireFuzzTest, AbsurdCountsAreRejectedWithoutAllocating) {
  {  // seed count far beyond the remaining bytes
    std::string bytes = "Q";
    Append<std::uint8_t>(&bytes, wire::kServeWireVersion);
    Append<std::uint32_t>(&bytes, 3);           // tenant
    Append<std::uint64_t>(&bytes, 1);           // request_id
    Append<std::uint64_t>(&bytes, 7);           // rng_seed
    Append<std::uint32_t>(&bytes, 0xFFFFFFFFu); // seed count
    bytes += "xx";
    EXPECT_EQ(TryQuery(bytes), DecodeResult::kMalformed);
  }
  {  // absurd stage count in a response
    std::string bytes = "P";
    Append<std::uint8_t>(&bytes, wire::kServeWireVersion);
    Append<std::uint32_t>(&bytes, 3);           // tenant
    Append<std::uint64_t>(&bytes, 1);           // request_id
    Append<std::uint8_t>(&bytes, 0);            // status
    Append<std::uint64_t>(&bytes, 7);           // epoch
    Append<std::uint32_t>(&bytes, 0xFFFFFFFFu); // stage count
    bytes += "xx";
    EXPECT_EQ(TryQueryResponse(bytes), DecodeResult::kMalformed);
  }
  {  // plausible stage count, absurd ids length inside stage 0
    std::string bytes = "P";
    Append<std::uint8_t>(&bytes, wire::kServeWireVersion);
    Append<std::uint32_t>(&bytes, 3);
    Append<std::uint64_t>(&bytes, 1);
    Append<std::uint8_t>(&bytes, 0);
    Append<std::uint64_t>(&bytes, 7);
    Append<std::uint32_t>(&bytes, 1);            // one stage
    Append<std::uint32_t>(&bytes, 0xFFFFFFFFu);  // ids_len
    bytes += "xxxxxxxx";
    EXPECT_EQ(TryQueryResponse(bytes), DecodeResult::kMalformed);
  }
}

TEST(ServeWireFuzzTest, V1MessagesStillDecode) {
  // Wire v2 added the trace fields; a v1 peer's messages must keep
  // decoding — with an unset trace context — and the v1 byte layout must
  // not depend on any trace state the encoder was handed.
  const serve::QueryRequest traced = MakeQuery();
  serve::QueryRequest plain = traced;
  plain.trace = obs::TraceContext{};
  EXPECT_EQ(EncodeQueryRequest(traced, 1), EncodeQueryRequest(plain, 1));
  serve::QueryRequest req;
  ASSERT_EQ(DecodeQueryRequest(EncodeQueryRequest(traced, 1), &req),
            DecodeResult::kOk);
  EXPECT_EQ(req, plain);

  serve::QueryResponse traced_resp = MakeQueryResponse();
  serve::QueryResponse plain_resp = traced_resp;
  plain_resp.trace_id = 0;
  EXPECT_EQ(EncodeQueryResponse(traced_resp, 1),
            EncodeQueryResponse(plain_resp, 1));
  serve::QueryResponse resp;
  ASSERT_EQ(DecodeQueryResponse(EncodeQueryResponse(traced_resp, 1), &resp),
            DecodeResult::kOk);
  EXPECT_EQ(resp, plain_resp);
}

TEST(ServeWireFuzzTest, UnknownVersionIsNegotiationFailureNotCorruption) {
  for (const std::uint8_t v : {std::uint8_t{0}, std::uint8_t{3},
                               std::uint8_t{99}, std::uint8_t{255}}) {
    EXPECT_EQ(TryQuery(EncodeQueryRequest(MakeQuery(), v)),
              DecodeResult::kUnsupportedVersion)
        << "version " << int{v};
    EXPECT_EQ(TryQueryResponse(EncodeQueryResponse(MakeQueryResponse(), v)),
              DecodeResult::kUnsupportedVersion);
  }
  // A wrong tag is NOT a version problem.
  EXPECT_EQ(TryQuery(EncodeQueryResponse(MakeQueryResponse())),
            DecodeResult::kMalformed);
  EXPECT_EQ(TryQueryResponse(EncodeQueryRequest(MakeQuery())),
            DecodeResult::kMalformed);
  EXPECT_EQ(TryQuery(""), DecodeResult::kMalformed);
}

TEST(ServeWireFuzzTest, MalformedOffsetsAreRejected) {
  // Offsets must be a valid CSR index over ids: 0-anchored,
  // non-decreasing, ending at ids_len. Each violation is kMalformed, not
  // a crash in downstream frontier consumers.
  serve::QueryResponse resp = MakeQueryResponse();
  resp.stages[0].offsets = {1, 3, 3, 5};  // not 0-anchored
  EXPECT_EQ(TryQueryResponse(EncodeQueryResponse(resp)),
            DecodeResult::kMalformed);
  resp = MakeQueryResponse();
  resp.stages[0].offsets = {0, 3, 2, 5};  // decreasing
  EXPECT_EQ(TryQueryResponse(EncodeQueryResponse(resp)),
            DecodeResult::kMalformed);
  resp = MakeQueryResponse();
  resp.stages[0].offsets = {0, 3, 3, 4};  // back() != ids_len
  EXPECT_EQ(TryQueryResponse(EncodeQueryResponse(resp)),
            DecodeResult::kMalformed);
  resp = MakeQueryResponse();
  resp.stages[1].features = {1.0f, 2.0f, 3.0f};  // not a multiple of dim 2
  EXPECT_EQ(TryQueryResponse(EncodeQueryResponse(resp)),
            DecodeResult::kMalformed);
}

TEST(ServeWireFuzzTest, RequestSurvivesFullBitFlipSweep) {
  serve::QueryRequest scratch;
  VersionedBitFlipSweep(EncodeQueryRequest(MakeQuery()), DecodeQueryRequest,
                      EncodeQueryRequest, &scratch, wire::kServeWireVersion);
}

TEST(ServeWireFuzzTest, ResponseSurvivesFullBitFlipSweep) {
  serve::QueryResponse scratch;
  VersionedBitFlipSweep(EncodeQueryResponse(MakeQueryResponse()),
                      DecodeQueryResponse, EncodeQueryResponse, &scratch,
                      wire::kServeWireVersion);
}

TEST(ServeWireFuzzTest, RandomGarbageNeverCrashesDecoders) {
  SplitMix64 rng(0x5E24E5EEDULL);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = rng.Next() % 96;
    std::string bytes;
    bytes.reserve(len + 2);
    if (rng.Next() & 1) {
      bytes.push_back("QP"[rng.Next() % 2]);
      if (rng.Next() & 1) {
        bytes.push_back(static_cast<char>(wire::kServeWireVersion));
      }
    }
    while (bytes.size() < len) {
      bytes.push_back(static_cast<char>(rng.Next()));
    }
    TryQuery(bytes);
    TryQueryResponse(bytes);
  }
}

// --- Trace-context propagation message (obs/trace.h) ------------------------

using wire::DecodeTraceContext;
using wire::EncodeTraceContext;

obs::TraceContext MakeTrace() {
  obs::TraceContext ctx;
  ctx.trace_id = 0x123456789ABCDEF0ULL;
  ctx.parent_span = 17;
  ctx.flags = obs::TraceContext::kSampled;
  return ctx;
}

DecodeResult TryTrace(const std::string& bytes) {
  obs::TraceContext out;
  return DecodeTraceContext(bytes, &out);
}

TEST(TraceWireFuzzTest, CleanContextRoundTripsExactly) {
  obs::TraceContext out;
  ASSERT_EQ(DecodeTraceContext(EncodeTraceContext(MakeTrace()), &out),
            DecodeResult::kOk);
  EXPECT_EQ(out, MakeTrace());
}

TEST(TraceWireFuzzTest, EveryTruncationIsRejected) {
  const std::string full = EncodeTraceContext(MakeTrace());
  for (std::size_t n = 0; n < full.size(); ++n) {
    EXPECT_EQ(TryTrace(full.substr(0, n)), DecodeResult::kMalformed)
        << "prefix length " << n;
  }
  EXPECT_EQ(TryTrace(full), DecodeResult::kOk);
  EXPECT_EQ(TryTrace(full + '\0'), DecodeResult::kMalformed)
      << "trailing garbage must be rejected";
}

TEST(TraceWireFuzzTest, UnknownVersionIsNegotiationFailureNotCorruption) {
  for (const std::uint8_t v : {std::uint8_t{0}, std::uint8_t{2},
                               std::uint8_t{99}, std::uint8_t{255}}) {
    EXPECT_EQ(TryTrace(EncodeTraceContext(MakeTrace(), v)),
              DecodeResult::kUnsupportedVersion)
        << "version " << int{v};
  }
  // A wrong tag is NOT a version problem.
  EXPECT_EQ(TryTrace(EncodeQueryRequest(MakeQuery())),
            DecodeResult::kMalformed);
  EXPECT_EQ(TryTrace(""), DecodeResult::kMalformed);
}

TEST(TraceWireFuzzTest, ContextSurvivesFullBitFlipSweep) {
  obs::TraceContext scratch;
  VersionedBitFlipSweep(EncodeTraceContext(MakeTrace()), DecodeTraceContext,
                        EncodeTraceContext, &scratch,
                        wire::kTraceWireVersion);
}

TEST(TraceWireFuzzTest, RandomGarbageNeverCrashesDecoder) {
  SplitMix64 rng(0x7A5CE5EEDULL);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = rng.Next() % 32;
    std::string bytes;
    bytes.reserve(len + 2);
    if (rng.Next() & 1) {
      bytes.push_back('T');
      if (rng.Next() & 1) {
        bytes.push_back(static_cast<char>(wire::kTraceWireVersion));
      }
    }
    while (bytes.size() < len) {
      bytes.push_back(static_cast<char>(rng.Next()));
    }
    TryTrace(bytes);
  }
}

TEST(RepWireFuzzTest, RandomGarbageNeverCrashesDecoders) {
  SplitMix64 rng(0x2EB11CA7E5EEDULL);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = rng.Next() % 80;
    std::string bytes;
    bytes.reserve(len + 2);
    if (rng.Next() & 1) {
      bytes.push_back("LAGB"[rng.Next() % 4]);
      // A valid version byte half the time, so sweeps get past the
      // negotiation gate and into the structural checks.
      if (rng.Next() & 1) {
        bytes.push_back(static_cast<char>(wire::kReplicationWireVersion));
      }
    }
    while (bytes.size() < len) {
      bytes.push_back(static_cast<char>(rng.Next()));
    }
    TryAppend(bytes);
    TryAck(bytes);
    TryDigest(bytes);
    TrySnapshot(bytes);
  }
}

}  // namespace
}  // namespace platod2gl
