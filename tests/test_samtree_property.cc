// Samtree property suites: randomized mixed insert/update/delete workloads
// across the (capacity, alpha, compression) parameter grid, checking after
// every burst that (a) Definition-1 and aggregation invariants hold, and
// (b) the tree's contents equal a shadow std::map driven by the same ops.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "core/compressed_ids.h"
#include "core/samtree.h"

namespace platod2gl {
namespace {

struct Params {
  std::uint32_t capacity;
  std::uint32_t alpha;
  bool compress;
  std::uint64_t seed;
};

class SamtreePropertyTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, bool, std::uint64_t>> {
 protected:
  Params P() const {
    const auto [c, a, z, s] = GetParam();
    return Params{c, a, z, s};
  }
};

TEST_P(SamtreePropertyTest, MixedWorkloadMatchesShadowMap) {
  const Params p = P();
  Samtree tree(SamtreeConfig{.node_capacity = p.capacity,
                             .alpha = p.alpha,
                             .compress_ids = p.compress});
  std::map<VertexId, Weight> shadow;
  Xoshiro256 rng(p.seed);

  const std::size_t id_space = 2000;
  std::string err;
  for (int burst = 0; burst < 20; ++burst) {
    for (int op = 0; op < 150; ++op) {
      const double r = rng.NextDouble();
      const VertexId v = rng.NextUint64(id_space);
      const Weight w = 0.01 + rng.NextDouble();
      if (r < 0.55) {
        tree.Insert(v, w);
        shadow[v] = w;
      } else if (r < 0.75) {
        const bool did = tree.Update(v, w);
        EXPECT_EQ(did, shadow.count(v) > 0);
        if (did) shadow[v] = w;
      } else {
        const bool did = tree.Remove(v);
        EXPECT_EQ(did, shadow.erase(v) > 0);
      }
    }
    ASSERT_TRUE(tree.CheckInvariants(&err))
        << "burst " << burst << ": " << err;
    ASSERT_EQ(tree.size(), shadow.size());

    // Contents match exactly.
    std::map<VertexId, Weight> got;
    for (const auto& [v, w] : tree.Neighbors()) got[v] = w;
    ASSERT_EQ(got.size(), shadow.size());
    for (const auto& [v, w] : shadow) {
      auto it = got.find(v);
      ASSERT_NE(it, got.end()) << "missing " << v;
      ASSERT_NEAR(it->second, w, 1e-9) << "weight of " << v;
    }

    // Point lookups agree too.
    for (int probe = 0; probe < 50; ++probe) {
      const VertexId v = rng.NextUint64(id_space);
      const auto expect = shadow.find(v);
      const auto got_w = tree.GetWeight(v);
      if (expect == shadow.end()) {
        ASSERT_FALSE(got_w.has_value()) << v;
      } else {
        ASSERT_TRUE(got_w.has_value()) << v;
        ASSERT_NEAR(*got_w, expect->second, 1e-9);
      }
    }
  }
}

TEST_P(SamtreePropertyTest, DrainToEmptyAndRefill) {
  const Params p = P();
  Samtree tree(SamtreeConfig{.node_capacity = p.capacity,
                             .alpha = p.alpha,
                             .compress_ids = p.compress});
  Xoshiro256 rng(p.seed ^ 0xABCDEF);

  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 300; ++v) ids.push_back(v * 7 + 1);

  // Shuffle insert order.
  for (std::size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.NextUint64(i)]);
  }
  for (VertexId v : ids) tree.Insert(v, 1.0);
  ASSERT_EQ(tree.size(), ids.size());

  // Shuffle delete order and drain completely.
  for (std::size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.NextUint64(i)]);
  }
  std::string err;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(tree.Remove(ids[i])) << ids[i];
    if (i % 37 == 0) {
      ASSERT_TRUE(tree.CheckInvariants(&err)) << err;
    }
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 0u);

  // The drained tree is fully reusable.
  tree.Insert(42, 2.0);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_NEAR(tree.TotalWeight(), 2.0, 1e-12);
}

TEST_P(SamtreePropertyTest, WeightedSamplingFrequenciesTrackWeights) {
  const Params p = P();
  Samtree tree(SamtreeConfig{.node_capacity = p.capacity,
                             .alpha = p.alpha,
                             .compress_ids = p.compress});
  Xoshiro256 rng(p.seed ^ 0x5A5A5A);

  // A handful of heavy neighbours among many light ones so the test has
  // statistical teeth at moderate sample counts.
  std::map<VertexId, Weight> weights;
  Weight total = 0.0;
  for (VertexId v = 0; v < 60; ++v) {
    const Weight w = (v % 20 == 0) ? 10.0 : 0.5;
    tree.Insert(v, w);
    weights[v] = w;
    total += w;
  }

  std::map<VertexId, int> hits;
  const int draws = 60000;
  for (int i = 0; i < draws; ++i) ++hits[tree.SampleWeighted(rng)];
  for (const auto& [v, w] : weights) {
    const double expect = w / total;
    const double got = hits[v] / static_cast<double>(draws);
    ASSERT_NEAR(got, expect, 0.02) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SamtreePropertyTest,
    ::testing::Combine(
        ::testing::Values(4u, 8u, 64u, 256u),   // node capacity
        ::testing::Values(0u, 2u),              // alpha slackness
        ::testing::Bool(),                      // compression
        ::testing::Values(1ull, 1337ull)),      // seeds
    [](const auto& info) {
      return "c" + std::to_string(std::get<0>(info.param)) + "_a" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_cp" : "_nocp") + "_s" +
             std::to_string(std::get<3>(info.param));
    });


// A single long adversarial differential run: 50k mixed operations with
// phase changes (insert-heavy, delete-heavy, update-heavy, churn on a
// narrow key range) against a shadow map, invariants checked at phase
// boundaries.
TEST(SamtreeFuzzTest, FiftyThousandOpsWithPhaseShifts) {
  Samtree tree(SamtreeConfig{.node_capacity = 16, .alpha = 1});
  std::map<VertexId, Weight> shadow;
  Xoshiro256 rng(0xF0CCAC1AULL);

  struct Phase {
    double insert, update;  // remainder = delete
    std::size_t id_space;
    int ops;
  };
  const Phase phases[] = {
      {0.9, 0.05, 100000, 15000},  // growth
      {0.1, 0.1, 100000, 10000},   // heavy deletion
      {0.2, 0.7, 100000, 10000},   // update churn
      {0.5, 0.2, 64, 15000},       // narrow-range churn (same keys over and
                                   // over: split/merge thrash)
  };
  std::string err;
  for (const Phase& ph : phases) {
    for (int i = 0; i < ph.ops; ++i) {
      const VertexId v = rng.NextUint64(ph.id_space);
      const Weight w = 0.01 + rng.NextDouble();
      const double r = rng.NextDouble();
      if (r < ph.insert) {
        tree.Insert(v, w);
        shadow[v] = w;
      } else if (r < ph.insert + ph.update) {
        ASSERT_EQ(tree.Update(v, w), shadow.count(v) > 0);
        if (shadow.count(v)) shadow[v] = w;
      } else {
        ASSERT_EQ(tree.Remove(v), shadow.erase(v) > 0);
      }
    }
    ASSERT_TRUE(tree.CheckInvariants(&err)) << err;
    ASSERT_EQ(tree.size(), shadow.size());
    Weight expect_total = 0.0;
    for (const auto& [v, w] : shadow) expect_total += w;
    ASSERT_NEAR(tree.TotalWeight(), expect_total,
                1e-6 * std::max(1.0, expect_total));
  }
}

// Per-operation invariant interleavings: where the suites above check at
// burst boundaries, this one validates the full Definition-1 / aggregation
// invariant set after *every single* mutation, across interleavings skewed
// to cross the α-split and merge thresholds repeatedly. Small op counts
// keep the O(n)-per-op checking affordable.
TEST(SamtreeInvariantInterleavingTest, EveryOpPreservesInvariants) {
  struct Cfg {
    std::uint32_t capacity, alpha;
  };
  const Cfg cfgs[] = {{4, 0}, {4, 2}, {5, 1}, {8, 3}};
  std::string err;
  for (const Cfg& cfg : cfgs) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      Samtree tree(SamtreeConfig{.node_capacity = cfg.capacity,
                                 .alpha = cfg.alpha});
      std::map<VertexId, Weight> shadow;
      Xoshiro256 rng(seed * 7919);
      for (int op = 0; op < 400; ++op) {
        // Narrow ID space (tied to capacity) so splits, merges and
        // duplicate-refresh inserts all fire within 400 ops.
        const VertexId v = rng.NextUint64(cfg.capacity * 12);
        const Weight w = 0.01 + rng.NextDouble();
        const double r = rng.NextDouble();
        if (r < 0.5) {
          tree.Insert(v, w);
          shadow[v] = w;
        } else if (r < 0.7) {
          ASSERT_EQ(tree.Update(v, w), shadow.count(v) > 0);
          if (shadow.count(v)) shadow[v] = w;
        } else {
          ASSERT_EQ(tree.Remove(v), shadow.erase(v) > 0);
        }
        ASSERT_TRUE(tree.CheckInvariants(&err))
            << "c=" << cfg.capacity << " a=" << cfg.alpha << " seed=" << seed
            << " op=" << op << ": " << err;
        ASSERT_EQ(tree.size(), shadow.size());
      }
    }
  }
}

// CP-ID round-trips at every allowed prefix width z ∈ {7, 6, 4, 0}: IDs
// engineered to differ only in their low 1 / 2 / 4 / 8 bytes must land on
// exactly that encoding width, survive a full decode, and keep a samtree
// built from them (compression on) invariant-clean with the right sorted
// contents.
TEST(SamtreeInvariantInterleavingTest, CpIdRoundTripAtEveryPrefixWidth) {
  struct Group {
    std::uint8_t z;
    std::vector<VertexId> ids;
  };
  std::vector<Group> groups(4);
  groups[0].z = 7;  // differ only in the lowest byte
  for (std::uint64_t i = 0; i < 50; ++i) {
    groups[0].ids.push_back(0x0123456789ABCD00ULL | (i * 5));
  }
  groups[1].z = 6;  // differ in the low two bytes
  for (std::uint64_t i = 0; i < 50; ++i) {
    groups[1].ids.push_back(0x0123456789AB0000ULL | (i * 0x151));
  }
  groups[2].z = 4;  // differ in the low four bytes
  for (std::uint64_t i = 0; i < 50; ++i) {
    groups[2].ids.push_back(0xDEADBEEF00000000ULL | (i * 0x01012345));
  }
  groups[3].z = 0;  // high bytes differ: no shared prefix possible
  for (std::uint64_t i = 1; i <= 50; ++i) {
    groups[3].ids.push_back(i * 0x0123456789ABCDEFULL);
  }

  for (const Group& g : groups) {
    // The raw list encodes at exactly z and round-trips every ID.
    CompressedIdList list;
    for (VertexId id : g.ids) list.Append(id);
    EXPECT_EQ(list.prefix_bytes(), g.z);
    ASSERT_EQ(list.size(), g.ids.size());
    for (std::size_t i = 0; i < g.ids.size(); ++i) {
      ASSERT_EQ(list.Get(i), g.ids[i]) << "z=" << int(g.z) << " i=" << i;
    }
    std::string err;
    ASSERT_TRUE(list.CheckConsistent(&err)) << "z=" << int(g.z) << ": " << err;

    // A compressed samtree over the same IDs stays invariant-clean and
    // returns them all, sorted.
    Samtree tree(
        SamtreeConfig{.node_capacity = 8, .alpha = 1, .compress_ids = true});
    Xoshiro256 rng(g.z + 1);
    std::vector<VertexId> shuffled = g.ids;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.NextUint64(i)]);
    }
    for (VertexId id : shuffled) tree.Insert(id, 1.0);
    ASSERT_TRUE(tree.CheckInvariants(&err)) << "z=" << int(g.z) << ": " << err;
    std::vector<VertexId> expect = g.ids;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(tree.SortedIds(), expect) << "z=" << int(g.z);
  }
}

}  // namespace
}  // namespace platod2gl
