// Graph-analytics tests: degree stats, PageRank, connected components,
// triangle estimation, plus the text edge-list loader.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <vector>

#include "analytics/graph_metrics.h"
#include "common/random.h"
#include "io/edge_list_reader.h"
#include "storage/graph_store.h"

namespace platod2gl {
namespace {

TEST(DegreeStatsTest, CountsAndHistogram) {
  TopologyStore store;
  // Degrees: 1, 3, 8.
  store.AddEdge(1, 10, 1.0);
  for (VertexId d = 0; d < 3; ++d) store.AddEdge(2, 20 + d, 1.0);
  for (VertexId d = 0; d < 8; ++d) store.AddEdge(3, 30 + d, 1.0);

  const DegreeStats s = ComputeDegreeStats(store);
  EXPECT_EQ(s.num_sources, 3u);
  EXPECT_EQ(s.num_edges, 12u);
  EXPECT_EQ(s.max_degree, 8u);
  EXPECT_NEAR(s.mean_degree, 4.0, 1e-12);
  // Buckets: degree 1 -> [1,2), degree 3 -> [2,4), degree 8 -> [8,16).
  ASSERT_GE(s.log2_histogram.size(), 4u);
  EXPECT_EQ(s.log2_histogram[0], 1u);
  EXPECT_EQ(s.log2_histogram[1], 1u);
  EXPECT_EQ(s.log2_histogram[3], 1u);
}

TEST(DegreeStatsTest, EmptyStore) {
  TopologyStore store;
  const DegreeStats s = ComputeDegreeStats(store);
  EXPECT_EQ(s.num_sources, 0u);
  EXPECT_DOUBLE_EQ(s.mean_degree, 0.0);
}

TEST(PageRankTest, MassConservedAndHubWins) {
  TopologyStore store;
  // Star pointing at vertex 0: many sources link to it; 0 links back to
  // one of them.
  for (VertexId v = 1; v <= 20; ++v) store.AddEdge(v, 0, 1.0);
  store.AddEdge(0, 1, 1.0);

  const auto pr = PageRank(store);
  double total = 0.0;
  for (const auto& [v, r] : pr) total += r;
  EXPECT_NEAR(total, 1.0, 1e-6);

  // The hub must outrank every spoke.
  for (VertexId v = 2; v <= 20; ++v) {
    EXPECT_GT(pr.at(0), pr.at(v)) << v;
  }
  // Vertex 1 gets the hub's endorsement -> second place.
  EXPECT_GT(pr.at(1), pr.at(2));
}

TEST(PageRankTest, SymmetricCycleIsUniform) {
  TopologyStore store;
  for (VertexId v = 0; v < 10; ++v) store.AddEdge(v, (v + 1) % 10, 1.0);
  const auto pr = PageRank(store);
  for (const auto& [v, r] : pr) EXPECT_NEAR(r, 0.1, 1e-6) << v;
}

TEST(PageRankTest, WeightedEdgesSteerMass) {
  TopologyStore store;
  store.AddEdge(0, 1, 9.0);
  store.AddEdge(0, 2, 1.0);
  store.AddEdge(1, 0, 1.0);
  store.AddEdge(2, 0, 1.0);
  const auto pr = PageRank(store);
  EXPECT_GT(pr.at(1), pr.at(2) * 3);
}

TEST(ConnectedComponentsTest, FindsIslands) {
  TopologyStore store;
  // Island A: 1-2-3; island B: 10-11; isolated source 20 -> 21.
  store.AddEdge(1, 2, 1.0);
  store.AddEdge(2, 3, 1.0);
  store.AddEdge(10, 11, 1.0);
  store.AddEdge(20, 21, 1.0);

  const auto cc = ConnectedComponents(store);
  EXPECT_EQ(NumComponents(cc), 3u);
  EXPECT_EQ(cc.at(1), cc.at(3));
  EXPECT_EQ(cc.at(10), cc.at(11));
  EXPECT_NE(cc.at(1), cc.at(10));
  EXPECT_EQ(cc.at(1), 1u) << "representative is the smallest ID";
  EXPECT_EQ(cc.at(21), 20u);
}

TEST(ConnectedComponentsTest, DirectionIgnored) {
  TopologyStore store;
  store.AddEdge(5, 4, 1.0);  // only a backward edge
  const auto cc = ConnectedComponents(store);
  EXPECT_EQ(NumComponents(cc), 1u);
  EXPECT_EQ(cc.at(5), 4u);
}

TEST(TriangleEstimateTest, CliqueAndTriangleFree) {
  // Bi-directed K5 has C(5,3) = 10 triangles.
  TopologyStore k5;
  for (VertexId a = 0; a < 5; ++a) {
    for (VertexId b = 0; b < 5; ++b) {
      if (a != b) k5.AddEdge(a, b, 1.0);
    }
  }
  Xoshiro256 rng(3);
  EXPECT_NEAR(EstimateTriangles(k5, 20000, rng), 10.0, 1.0);

  // A bi-directed star is triangle-free.
  TopologyStore star;
  for (VertexId v = 1; v <= 10; ++v) {
    star.AddEdge(0, v, 1.0);
    star.AddEdge(v, 0, 1.0);
  }
  EXPECT_DOUBLE_EQ(EstimateTriangles(star, 5000, rng), 0.0);
}


TEST(CommonNeighborsTest, SortedIdsAndIntersection) {
  TopologyStore store(SamtreeConfig{.node_capacity = 4});
  // N(1) = {10, 20, 30, 40, 50}, N(2) = {30, 40, 60} (multi-leaf trees).
  for (VertexId d : {50u, 10u, 30u, 20u, 40u}) store.AddEdge(1, d, 1.0);
  for (VertexId d : {60u, 30u, 40u}) store.AddEdge(2, d, 1.0);

  EXPECT_EQ(store.FindTree(1)->SortedIds(),
            (std::vector<VertexId>{10, 20, 30, 40, 50}));
  EXPECT_EQ(CommonNeighbors(store, 1, 2),
            (std::vector<VertexId>{30, 40}));
  EXPECT_TRUE(CommonNeighbors(store, 1, 99).empty());
}

TEST(CommonNeighborsTest, SortedIdsOnLargeTree) {
  TopologyStore store(SamtreeConfig{.node_capacity = 8});
  Xoshiro256 rng(5);
  std::set<VertexId> shadow;
  for (int i = 0; i < 2000; ++i) {
    const VertexId d = rng.NextUint64(100000);
    store.AddEdge(7, d, 1.0);
    shadow.insert(d);
  }
  const auto sorted = store.FindTree(7)->SortedIds();
  EXPECT_EQ(sorted, std::vector<VertexId>(shadow.begin(), shadow.end()));
}

TEST(CommonNeighborsTest, JaccardSimilarity) {
  TopologyStore store;
  for (VertexId d : {1u, 2u, 3u, 4u}) store.AddEdge(10, d, 1.0);
  for (VertexId d : {3u, 4u, 5u, 6u}) store.AddEdge(20, d, 1.0);
  // |∩| = 2, |∪| = 6.
  EXPECT_NEAR(JaccardSimilarity(store, 10, 20), 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(JaccardSimilarity(store, 10, 10), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(store, 10, 999), 0.0);
}

// --- edge-list reader -------------------------------------------------------

class EdgeListTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("pd2g_edges_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(EdgeListTest, ParseLineVariants) {
  Edge e;
  ASSERT_TRUE(ParseEdgeLine("1 2", &e));
  EXPECT_EQ(e.src, 1u);
  EXPECT_EQ(e.dst, 2u);
  EXPECT_DOUBLE_EQ(e.weight, 1.0);
  EXPECT_EQ(e.type, 0u);

  ASSERT_TRUE(ParseEdgeLine("3\t4\t0.5", &e));
  EXPECT_DOUBLE_EQ(e.weight, 0.5);

  ASSERT_TRUE(ParseEdgeLine("5 6 2.5 3", &e));
  EXPECT_EQ(e.type, 3u);

  EXPECT_FALSE(ParseEdgeLine("", &e));
  EXPECT_FALSE(ParseEdgeLine("   ", &e));
  EXPECT_FALSE(ParseEdgeLine("# comment", &e));
  EXPECT_FALSE(ParseEdgeLine("% konect header", &e));
  EXPECT_FALSE(ParseEdgeLine("7", &e)) << "missing destination";
  EXPECT_FALSE(ParseEdgeLine("x y", &e));
  EXPECT_FALSE(ParseEdgeLine("1 2 -3.0", &e)) << "weights must be positive";
}

TEST_F(EdgeListTest, ReadFileWithCommentsAndJunk) {
  std::ofstream(path_) << "# SNAP-style header\n"
                       << "1 2 0.5\n"
                       << "\n"
                       << "2 3\n"
                       << "garbage line\n"
                       << "3 1 2.0\n";
  EdgeListStats stats;
  auto result = ReadEdgeList(path_.string(), &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 3u);
  EXPECT_EQ(stats.edges_loaded, 3u);
  EXPECT_EQ(stats.lines_skipped, 3u);
  EXPECT_DOUBLE_EQ(result.value()[0].weight, 0.5);
}

TEST_F(EdgeListTest, LoadIntoGraphStore) {
  std::ofstream(path_) << "1 2 0.5\n2 3 1.5\n1 2 9.0\n";  // dup refreshes
  GraphStore g;
  EdgeListStats stats;
  ASSERT_TRUE(LoadEdgeList(path_.string(), &g, &stats).ok());
  EXPECT_EQ(stats.edges_loaded, 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_NEAR(*g.EdgeWeight(1, 2), 9.0, 1e-12);
}

TEST_F(EdgeListTest, OutOfRangeRelationSkipped) {
  std::ofstream(path_) << "1 2 1.0 0\n3 4 1.0 7\n";
  GraphStore g;  // single relation
  EdgeListStats stats;
  ASSERT_TRUE(LoadEdgeList(path_.string(), &g, &stats).ok());
  EXPECT_EQ(stats.edges_loaded, 1u);
  EXPECT_EQ(stats.lines_skipped, 1u);
}

TEST_F(EdgeListTest, MissingFile) {
  GraphStore g;
  EXPECT_EQ(LoadEdgeList("/no/such/file.txt", &g).code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(ReadEdgeList("/no/such/file.txt").ok());
}

TEST_F(EdgeListTest, LoadedGraphSupportsAnalytics) {
  // End-to-end: file -> store -> PageRank.
  std::ofstream(path_) << "1 2\n2 3\n3 1\n";
  GraphStore g;
  ASSERT_TRUE(LoadEdgeList(path_.string(), &g).ok());
  const auto pr = PageRank(g.topology(0));
  EXPECT_EQ(pr.size(), 3u);
  for (const auto& [v, r] : pr) EXPECT_NEAR(r, 1.0 / 3, 1e-6) << v;
}

}  // namespace
}  // namespace platod2gl
