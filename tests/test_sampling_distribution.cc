// Statistical equivalence of the sampling paths: FTS (FSTable), ITS
// (CSTable), the alias method and the full samtree descent must all
// realise the same weighted distribution (paper Section V-B/V-C).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "core/samtree.h"
#include "index/alias_table.h"
#include "index/cstable.h"
#include "index/fstable.h"

namespace platod2gl {
namespace {

// Pearson chi-square statistic of observed counts vs expected
// probabilities.
double ChiSquare(const std::vector<int>& hits,
                 const std::vector<double>& probs, int draws) {
  double chi = 0.0;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    const double expect = probs[i] * draws;
    if (expect < 1e-9) continue;
    const double d = hits[i] - expect;
    chi += d * d / expect;
  }
  return chi;
}

std::vector<double> Normalize(const std::vector<Weight>& w) {
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  std::vector<double> p;
  p.reserve(w.size());
  for (Weight x : w) p.push_back(x / total);
  return p;
}

class IndexDistributionTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::vector<Weight> RandomWeights(Xoshiro256& rng, std::size_t n) {
    std::vector<Weight> w;
    for (std::size_t i = 0; i < n; ++i) w.push_back(0.05 + rng.NextDouble());
    return w;
  }
};

TEST_P(IndexDistributionTest, FTSandITSandAliasAgree) {
  Xoshiro256 rng(GetParam());
  const std::size_t n = 37;  // deliberately not a power of two
  const std::vector<Weight> w = RandomWeights(rng, n);
  const std::vector<double> probs = Normalize(w);

  FSTable fs(w);
  CSTable cs(w);
  AliasTable alias(w);

  const int draws = 120000;
  std::vector<int> h_fts(n, 0), h_its(n, 0), h_alias(n, 0);
  for (int i = 0; i < draws; ++i) {
    ++h_fts[fs.Sample(rng)];
    ++h_its[cs.Sample(rng)];
    ++h_alias[alias.Sample(rng)];
  }
  // Chi-square with 36 dof: 99.9th percentile is ~67.9; use a slack bound
  // since we run several seeds.
  EXPECT_LT(ChiSquare(h_fts, probs, draws), 80.0) << "FTS biased";
  EXPECT_LT(ChiSquare(h_its, probs, draws), 80.0) << "ITS biased";
  EXPECT_LT(ChiSquare(h_alias, probs, draws), 80.0) << "alias biased";
}

TEST_P(IndexDistributionTest, FTSUnbiasedAfterMutations) {
  Xoshiro256 rng(GetParam() ^ 0xF00D);
  std::vector<Weight> w = RandomWeights(rng, 24);
  FSTable fs(w);
  // Mutate: appends, in-place updates and swap-deletes, mirrored in w.
  for (int k = 0; k < 200; ++k) {
    const double r = rng.NextDouble();
    if (r < 0.4) {
      const Weight x = 0.05 + rng.NextDouble();
      w.push_back(x);
      fs.Append(x);
    } else if (r < 0.7 || w.size() <= 4) {
      const std::size_t i = rng.NextUint64(w.size());
      const Weight x = 0.05 + rng.NextDouble();
      w[i] = x;
      fs.UpdateWeight(i, x);
    } else {
      const std::size_t i = rng.NextUint64(w.size());
      w[i] = w.back();
      w.pop_back();
      fs.RemoveSwapLast(i);
    }
  }
  const std::vector<double> probs = Normalize(w);
  std::vector<int> hits(w.size(), 0);
  const int draws = 150000;
  for (int i = 0; i < draws; ++i) ++hits[fs.Sample(rng)];
  EXPECT_LT(ChiSquare(hits, probs, draws),
            static_cast<double>(w.size()) * 2.5 + 40.0);
}

TEST_P(IndexDistributionTest, SamtreeFullPathMatchesWeights) {
  // Multi-level samtree (small capacity forces internal ITS + leaf FTS).
  Xoshiro256 rng(GetParam() ^ 0xBEEF);
  Samtree tree(SamtreeConfig{.node_capacity = 8, .alpha = 0,
                             .compress_ids = true});
  std::map<VertexId, Weight> weights;
  Weight total = 0.0;
  for (VertexId v = 0; v < 200; ++v) {
    const Weight w = 0.05 + rng.NextDouble();
    tree.Insert(v, w);
    weights[v] = w;
    total += w;
  }
  ASSERT_GE(tree.Height(), 3u);

  std::vector<int> hits(200, 0);
  const int draws = 300000;
  for (int i = 0; i < draws; ++i) ++hits[tree.SampleWeighted(rng)];

  std::vector<double> probs;
  for (VertexId v = 0; v < 200; ++v) probs.push_back(weights[v] / total);
  // 199 dof: 99.9th percentile ~ 272.
  EXPECT_LT(ChiSquare(hits, probs, draws), 300.0);
}

TEST_P(IndexDistributionTest, SamtreeUniformSamplingIsUniform) {
  Xoshiro256 rng(GetParam() ^ 0xCAFE);
  Samtree tree(SamtreeConfig{.node_capacity = 8});
  const std::size_t n = 128;
  for (VertexId v = 0; v < n; ++v) {
    tree.Insert(v, 0.05 + rng.NextDouble());  // weights must not matter
  }
  std::vector<int> hits(n, 0);
  const int draws = 256000;
  for (int i = 0; i < draws; ++i) ++hits[tree.SampleUniform(rng)];
  const std::vector<double> probs(n, 1.0 / static_cast<double>(n));
  // 127 dof: 99.9th percentile ~ 186.
  EXPECT_LT(ChiSquare(hits, probs, draws), 200.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexDistributionTest,
                         ::testing::Values(11, 222, 3333));

}  // namespace
}  // namespace platod2gl
