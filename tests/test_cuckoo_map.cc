// Concurrent cuckoo hash map tests (paper Section IV-B topology hashmap).
#include "storage/cuckoo_map.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"

namespace platod2gl {
namespace {

TEST(CuckooMapTest, InsertAndFind) {
  CuckooMap<int> map(4, 4);
  map.With(1, [](int& v) { v = 10; });
  map.With(2, [](int& v) { v = 20; });
  ASSERT_NE(map.FindUnsafe(1), nullptr);
  EXPECT_EQ(*map.FindUnsafe(1), 10);
  EXPECT_EQ(*map.FindUnsafe(2), 20);
  EXPECT_EQ(map.FindUnsafe(3), nullptr);
  EXPECT_EQ(map.Size(), 2u);
}

TEST(CuckooMapTest, WithIsUpsert) {
  CuckooMap<int> map;
  map.With(5, [](int& v) { v = 1; });
  map.With(5, [](int& v) { v += 1; });
  EXPECT_EQ(*map.FindUnsafe(5), 2);
  EXPECT_EQ(map.Size(), 1u);
}

TEST(CuckooMapTest, WithExistingSkipsAbsent) {
  CuckooMap<int> map;
  bool ran = false;
  EXPECT_FALSE(map.WithExisting(9, [&](int&) { ran = true; }));
  EXPECT_FALSE(ran);
  map.With(9, [](int& v) { v = 3; });
  EXPECT_TRUE(map.WithExisting(9, [&](int& v) { v = 4; }));
  EXPECT_EQ(*map.FindUnsafe(9), 4);
}

TEST(CuckooMapTest, Erase) {
  CuckooMap<int> map;
  map.With(7, [](int& v) { v = 1; });
  EXPECT_TRUE(map.Erase(7));
  EXPECT_FALSE(map.Erase(7));
  EXPECT_EQ(map.FindUnsafe(7), nullptr);
  EXPECT_EQ(map.Size(), 0u);
}

TEST(CuckooMapTest, GrowsUnderLoad) {
  // Tiny initial table: forces eviction walks and doubling.
  CuckooMap<std::uint64_t> map(1, 2);
  for (VertexId k = 1; k <= 10000; ++k) {
    map.With(k, [k](std::uint64_t& v) { v = k * 3; });
  }
  EXPECT_EQ(map.Size(), 10000u);
  for (VertexId k = 1; k <= 10000; ++k) {
    ASSERT_NE(map.FindUnsafe(k), nullptr) << k;
    ASSERT_EQ(*map.FindUnsafe(k), k * 3);
  }
}

TEST(CuckooMapTest, ValuePointersStableAcrossGrowth) {
  CuckooMap<std::uint64_t> map(1, 2);
  map.With(99, [](std::uint64_t& v) { v = 42; });
  std::uint64_t* p = map.FindUnsafe(99);
  for (VertexId k = 1000; k < 6000; ++k) {
    map.With(k, [](std::uint64_t& v) { v = 1; });
  }
  // Heap-pinned values: the address must survive rehashing.
  EXPECT_EQ(map.FindUnsafe(99), p);
  EXPECT_EQ(*p, 42u);
}

TEST(CuckooMapTest, ForEachVisitsAll) {
  CuckooMap<int> map;
  std::set<VertexId> expect;
  for (VertexId k = 10; k < 200; k += 10) {
    map.With(k, [](int& v) { v = 1; });
    expect.insert(k);
  }
  std::set<VertexId> seen;
  map.ForEach([&](VertexId k, const int&) { seen.insert(k); });
  EXPECT_EQ(seen, expect);
}

TEST(CuckooMapTest, MemoryUsageTracksBuckets) {
  CuckooMap<int> small(1, 2), grown(1, 2);
  for (VertexId k = 0; k < 5000; ++k) {
    grown.With(k + 1, [](int& v) { v = 1; });
  }
  EXPECT_GT(grown.MemoryUsage(), small.MemoryUsage());
}

TEST(CuckooMapTest, ConcurrentInsertsFromManyThreads) {
  CuckooMap<std::uint64_t> map(64, 8);
  constexpr int kThreads = 8;
  constexpr VertexId kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (VertexId i = 0; i < kPerThread; ++i) {
        const VertexId key = static_cast<VertexId>(t) * kPerThread + i + 1;
        map.With(key, [key](std::uint64_t& v) { v = key; });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(map.Size(), kThreads * kPerThread);
  for (VertexId k = 1; k <= kThreads * kPerThread; ++k) {
    ASSERT_NE(map.FindUnsafe(k), nullptr) << k;
    ASSERT_EQ(*map.FindUnsafe(k), k);
  }
}

TEST(CuckooMapTest, ConcurrentUpsertsOnSameKeys) {
  CuckooMap<std::uint64_t> map(16, 8);
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map] {
      for (int round = 0; round < 2000; ++round) {
        const VertexId key = (round % 50) + 1;
        map.With(key, [](std::uint64_t& v) { v += 1; });
      }
    });
  }
  for (auto& th : threads) th.join();
  std::uint64_t total = 0;
  map.ForEach([&](VertexId, const std::uint64_t& v) { total += v; });
  EXPECT_EQ(total, kThreads * 2000u);  // no lost updates
  EXPECT_EQ(map.Size(), 50u);
}

TEST(CuckooMapTest, MoveOnlyValues) {
  struct MoveOnly {
    std::unique_ptr<int> p;
  };
  CuckooMap<MoveOnly> map;
  map.With(1, [](MoveOnly& m) { m.p = std::make_unique<int>(5); });
  ASSERT_NE(map.FindUnsafe(1), nullptr);
  EXPECT_EQ(*map.FindUnsafe(1)->p, 5);
}

}  // namespace
}  // namespace platod2gl
