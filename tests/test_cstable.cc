// CSTable unit tests: the ITS building block (paper Section II-B).
#include "index/cstable.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace platod2gl {
namespace {

TEST(CSTableTest, BuildComputesPrefixSums) {
  CSTable c({0.1, 0.4, 0.2});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c.Prefix(0), 0.1);
  EXPECT_DOUBLE_EQ(c.Prefix(1), 0.5);
  EXPECT_DOUBLE_EQ(c.Prefix(2), 0.7);
  EXPECT_DOUBLE_EQ(c.TotalWeight(), 0.7);
}

TEST(CSTableTest, EmptyTable) {
  CSTable c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.size(), 0u);
  EXPECT_DOUBLE_EQ(c.TotalWeight(), 0.0);
}

TEST(CSTableTest, WeightAtRecoversRawWeights) {
  const std::vector<Weight> w = {0.5, 0.2, 1.3, 0.7};
  CSTable c(w);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(c.WeightAt(i), w[i], 1e-12) << "i=" << i;
  }
}

TEST(CSTableTest, AppendIsConstantTimeSemantics) {
  CSTable c;
  c.Append(0.6);
  c.Append(0.7);
  // Paper Example 1: FSTable/CSTable of vertex 3 = [0.6, 1.3].
  EXPECT_DOUBLE_EQ(c.Prefix(0), 0.6);
  EXPECT_DOUBLE_EQ(c.Prefix(1), 1.3);
}

TEST(CSTableTest, UpdateWeightRewritesSuffix) {
  CSTable c({1.0, 2.0, 3.0, 4.0});
  c.UpdateWeight(1, 5.0);  // 2.0 -> 5.0
  EXPECT_DOUBLE_EQ(c.Prefix(0), 1.0);
  EXPECT_DOUBLE_EQ(c.Prefix(1), 6.0);
  EXPECT_DOUBLE_EQ(c.Prefix(2), 9.0);
  EXPECT_DOUBLE_EQ(c.Prefix(3), 13.0);
}

TEST(CSTableTest, RemoveShiftsAndRescales) {
  CSTable c({1.0, 2.0, 3.0});
  c.Remove(1);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c.WeightAt(0), 1.0);
  EXPECT_DOUBLE_EQ(c.WeightAt(1), 3.0);
  EXPECT_DOUBLE_EQ(c.TotalWeight(), 4.0);
}

TEST(CSTableTest, RemoveFirstAndLast) {
  CSTable c({1.0, 2.0, 3.0});
  c.Remove(0);
  EXPECT_DOUBLE_EQ(c.WeightAt(0), 2.0);
  c.Remove(1);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c.TotalWeight(), 2.0);
}

TEST(CSTableTest, FindIndexReturnsSmallestExceeding) {
  CSTable c({0.5, 0.2, 1.3});  // prefix sums 0.5, 0.7, 2.0
  EXPECT_EQ(c.FindIndex(0.0), 0u);
  EXPECT_EQ(c.FindIndex(0.49), 0u);
  EXPECT_EQ(c.FindIndex(0.5), 1u);
  EXPECT_EQ(c.FindIndex(0.69), 1u);
  EXPECT_EQ(c.FindIndex(0.7), 2u);
  EXPECT_EQ(c.FindIndex(1.99), 2u);
}

TEST(CSTableTest, ZeroWeightEntriesAreNeverSampled) {
  CSTable c({1.0, 0.0, 1.0});
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(c.Sample(rng), 1u);
  }
}

TEST(CSTableTest, AddDeltaMatchesUpdateWeight) {
  CSTable a({1.0, 2.0, 3.0});
  CSTable b({1.0, 2.0, 3.0});
  a.UpdateWeight(2, 4.5);
  b.AddDelta(2, 1.5);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(a.Prefix(i), b.Prefix(i));
  }
}

// Property sweep: CSTable under random edit scripts stays equal to a
// recomputed-from-scratch table.
class CSTableRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CSTableRandomized, MatchesBruteForceUnderEdits) {
  Xoshiro256 rng(GetParam());
  std::vector<Weight> w;
  CSTable c;
  for (int step = 0; step < 500; ++step) {
    const double r = rng.NextDouble();
    if (w.empty() || r < 0.5) {
      const Weight x = 0.01 + rng.NextDouble();
      w.push_back(x);
      c.Append(x);
    } else if (r < 0.8) {
      const std::size_t i = rng.NextUint64(w.size());
      const Weight x = 0.01 + rng.NextDouble();
      w[i] = x;
      c.UpdateWeight(i, x);
    } else {
      const std::size_t i = rng.NextUint64(w.size());
      w.erase(w.begin() + static_cast<std::ptrdiff_t>(i));
      c.Remove(i);
    }
    ASSERT_EQ(c.size(), w.size());
    Weight run = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) {
      run += w[i];
      ASSERT_NEAR(c.Prefix(i), run, 1e-9) << "step " << step << " i " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CSTableRandomized,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

}  // namespace
}  // namespace platod2gl
