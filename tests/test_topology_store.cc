// TopologyStore tests (paper Section IV-B).
#include "storage/topology_store.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"

namespace platod2gl {
namespace {

TEST(TopologyStoreTest, AddAndQueryEdges) {
  TopologyStore store;
  store.AddEdge(1, 2, 0.1);
  store.AddEdge(1, 3, 0.4);
  store.AddEdge(1, 5, 0.2);
  store.AddEdge(3, 4, 0.6);
  store.AddEdge(3, 7, 0.7);  // paper Example 1's graph

  EXPECT_EQ(store.NumSources(), 2u);
  EXPECT_EQ(store.NumEdges(), 5u);
  EXPECT_EQ(store.Degree(1), 3u);
  EXPECT_EQ(store.Degree(3), 2u);
  EXPECT_EQ(store.Degree(2), 0u);  // sink-only vertices store nothing
  EXPECT_TRUE(store.HasEdge(1, 3));
  EXPECT_FALSE(store.HasEdge(1, 4));
  EXPECT_NEAR(*store.EdgeWeight(3, 7), 0.7, 1e-12);
  EXPECT_NEAR(store.VertexWeight(1), 0.7, 1e-12);
}

TEST(TopologyStoreTest, ReinsertRefreshesWeightWithoutNewEdge) {
  TopologyStore store;
  store.AddEdge(1, 2, 0.5);
  store.AddEdge(1, 2, 1.5);
  EXPECT_EQ(store.NumEdges(), 1u);
  EXPECT_NEAR(*store.EdgeWeight(1, 2), 1.5, 1e-12);
}

TEST(TopologyStoreTest, UpdateAndRemove) {
  TopologyStore store;
  store.AddEdge(1, 2, 0.5);
  EXPECT_TRUE(store.UpdateEdge(1, 2, 2.5));
  EXPECT_FALSE(store.UpdateEdge(1, 9, 1.0));
  EXPECT_FALSE(store.UpdateEdge(8, 2, 1.0));
  EXPECT_NEAR(*store.EdgeWeight(1, 2), 2.5, 1e-12);

  EXPECT_TRUE(store.RemoveEdge(1, 2));
  EXPECT_FALSE(store.RemoveEdge(1, 2));
  EXPECT_EQ(store.NumEdges(), 0u);
  EXPECT_FALSE(store.HasEdge(1, 2));
}

TEST(TopologyStoreTest, ApplyDispatchesByKind) {
  TopologyStore store;
  store.Apply({UpdateKind::kInsert, Edge{1, 2, 1.0, 0}});
  store.Apply({UpdateKind::kInPlaceUpdate, Edge{1, 2, 3.0, 0}});
  EXPECT_NEAR(*store.EdgeWeight(1, 2), 3.0, 1e-12);
  store.Apply({UpdateKind::kDelete, Edge{1, 2, 0.0, 0}});
  EXPECT_FALSE(store.HasEdge(1, 2));
}

TEST(TopologyStoreTest, SampleNeighborsRespectsSources) {
  TopologyStore store;
  Xoshiro256 rng(4);
  std::vector<VertexId> out;
  EXPECT_FALSE(store.SampleNeighbors(1, 5, true, rng, &out));
  store.AddEdge(1, 10, 1.0);
  store.AddEdge(1, 20, 1.0);
  EXPECT_TRUE(store.SampleNeighbors(1, 50, true, rng, &out));
  EXPECT_EQ(out.size(), 50u);
  for (VertexId v : out) EXPECT_TRUE(v == 10 || v == 20);
  out.clear();
  EXPECT_TRUE(store.SampleNeighbors(1, 10, false, rng, &out));
  EXPECT_EQ(out.size(), 10u);
}

TEST(TopologyStoreTest, NeighborsEnumerates) {
  TopologyStore store;
  store.AddEdge(5, 1, 0.1);
  store.AddEdge(5, 2, 0.2);
  auto nbrs = store.Neighbors(5);
  ASSERT_EQ(nbrs.size(), 2u);
  std::map<VertexId, Weight> m(nbrs.begin(), nbrs.end());
  EXPECT_NEAR(m.at(1), 0.1, 1e-12);
  EXPECT_NEAR(m.at(2), 0.2, 1e-12);
  EXPECT_TRUE(store.Neighbors(99).empty());
}

TEST(TopologyStoreTest, ConfigPropagatesToTrees) {
  TopologyStore store(SamtreeConfig{.node_capacity = 8,
                                    .alpha = 1,
                                    .compress_ids = false});
  for (VertexId d = 0; d < 100; ++d) store.AddEdge(1, d, 1.0);
  const Samtree* tree = store.FindTree(1);
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->config().node_capacity, 8u);
  EXPECT_EQ(tree->config().alpha, 1u);
  EXPECT_FALSE(tree->config().compress_ids);
  EXPECT_GE(tree->Height(), 2u);  // capacity 8 with 100 neighbours: split
}

TEST(TopologyStoreTest, MemoryBreakdownNonTrivial) {
  TopologyStore store;
  for (VertexId s = 0; s < 50; ++s) {
    for (VertexId d = 0; d < 40; ++d) store.AddEdge(s, d, 1.0);
  }
  const MemoryBreakdown mem = store.Memory();
  EXPECT_GT(mem.topology_bytes, 0u);
  EXPECT_GT(mem.index_bytes, 0u);
  EXPECT_GT(mem.key_bytes, 0u);
}

TEST(TopologyStoreTest, AggregateStatsSumsTrees) {
  TopologyStore store(SamtreeConfig{.node_capacity = 4});
  for (VertexId s = 0; s < 10; ++s) {
    for (VertexId d = 0; d < 30; ++d) store.AddEdge(s, d, 1.0);
  }
  const SamtreeOpStats stats = store.AggregateStats();
  EXPECT_GE(stats.leaf_ops, 300u);
  EXPECT_GT(stats.leaf_splits, 0u);
}

TEST(TopologyStoreTest, ConcurrentWritersDisjointSources) {
  TopologyStore store;
  constexpr int kThreads = 8;
  constexpr VertexId kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      const VertexId src = static_cast<VertexId>(t) + 1;
      for (VertexId d = 0; d < kPerThread; ++d) {
        store.AddEdge(src, d + 1000, 1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.NumEdges(), kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(store.Degree(static_cast<VertexId>(t) + 1), kPerThread);
  }
}

TEST(TopologyStoreTest, ConcurrentWritersSameSource) {
  // Shard locks serialise same-source updates: no lost inserts.
  TopologyStore store;
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (VertexId d = 0; d < 300; ++d) {
        store.AddEdge(42, static_cast<VertexId>(t) * 1000 + d, 1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.Degree(42), kThreads * 300u);
  std::string err;
  ASSERT_TRUE(store.FindTree(42)->CheckInvariants(&err)) << err;
}

}  // namespace
}  // namespace platod2gl
