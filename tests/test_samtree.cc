// Samtree unit tests (paper Section IV).
#include "core/samtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/random.h"

namespace platod2gl {
namespace {

SamtreeConfig SmallConfig(std::uint32_t capacity = 4, std::uint32_t alpha = 0,
                          bool compress = true) {
  return SamtreeConfig{.node_capacity = capacity,
                       .alpha = alpha,
                       .compress_ids = compress};
}

std::map<VertexId, Weight> AsMap(const Samtree& t) {
  std::map<VertexId, Weight> m;
  for (const auto& [v, w] : t.Neighbors()) m[v] = w;
  return m;
}

TEST(SamtreeTest, EmptyTree) {
  Samtree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.Height(), 0u);
  EXPECT_DOUBLE_EQ(t.TotalWeight(), 0.0);
  EXPECT_FALSE(t.Contains(1));
  EXPECT_FALSE(t.Remove(1));
  std::string err;
  EXPECT_TRUE(t.CheckInvariants(&err)) << err;
}

TEST(SamtreeTest, SingleLeafInsertAndLookup) {
  // Paper Example 1, samtree of v3: neighbours {4: 0.6, 7: 0.7}.
  Samtree t(SmallConfig());
  t.Insert(4, 0.6);
  t.Insert(7, 0.7);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.Height(), 1u);  // one leaf
  EXPECT_NEAR(t.TotalWeight(), 1.3, 1e-12);
  ASSERT_TRUE(t.GetWeight(4).has_value());
  EXPECT_NEAR(*t.GetWeight(4), 0.6, 1e-12);
  ASSERT_TRUE(t.GetWeight(7).has_value());
  // Weights are recovered from Fenwick prefix differences, so allow for
  // floating-point rounding.
  EXPECT_NEAR(*t.GetWeight(7), 0.7, 1e-12);
  EXPECT_FALSE(t.GetWeight(5).has_value());
}

TEST(SamtreeTest, InsertExistingRefreshesWeight) {
  Samtree t(SmallConfig());
  t.Insert(4, 0.6);
  t.Insert(4, 2.0);  // Algorithm 2 line 4
  EXPECT_EQ(t.size(), 1u);
  EXPECT_NEAR(*t.GetWeight(4), 2.0, 1e-12);
  EXPECT_NEAR(t.TotalWeight(), 2.0, 1e-12);
}

TEST(SamtreeTest, PaperExample2OverflowSplit) {
  // Capacity 4; neighbours {1,2,3,4}; inserting 6 splits the leaf into
  // {1,2} and {3,4,6} under a new root.
  Samtree t(SmallConfig(4));
  t.Insert(1, 0.3);
  t.Insert(2, 0.4);
  t.Insert(3, 0.1);
  t.Insert(4, 0.7);
  EXPECT_EQ(t.Height(), 1u);
  t.Insert(6, 0.3);
  EXPECT_EQ(t.Height(), 2u);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_NEAR(t.TotalWeight(), 1.8, 1e-12);
  EXPECT_EQ(t.stats().leaf_splits, 1u);
  std::string err;
  EXPECT_TRUE(t.CheckInvariants(&err)) << err;
  // All five neighbours still retrievable with their weights.
  const auto m = AsMap(t);
  EXPECT_EQ(m.size(), 5u);
  EXPECT_NEAR(m.at(1), 0.3, 1e-12);
  EXPECT_NEAR(m.at(6), 0.3, 1e-12);
}

TEST(SamtreeTest, UpdateReturnsFalseForMissing) {
  Samtree t(SmallConfig());
  t.Insert(1, 1.0);
  EXPECT_FALSE(t.Update(2, 5.0));
  EXPECT_TRUE(t.Update(1, 5.0));
  EXPECT_NEAR(*t.GetWeight(1), 5.0, 1e-12);
}

TEST(SamtreeTest, RemoveFromLeafOnlyTree) {
  Samtree t(SmallConfig());
  t.Insert(1, 1.0);
  t.Insert(2, 2.0);
  EXPECT_TRUE(t.Remove(1));
  EXPECT_FALSE(t.Remove(1));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_NEAR(t.TotalWeight(), 2.0, 1e-12);
  EXPECT_TRUE(t.Remove(2));
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.Height(), 0u);
}

TEST(SamtreeTest, RemoveTriggersMergeAndHeightShrink) {
  Samtree t(SmallConfig(4));
  for (VertexId v = 1; v <= 10; ++v) t.Insert(v, 1.0);
  EXPECT_GE(t.Height(), 2u);
  std::string err;
  for (VertexId v = 1; v <= 9; ++v) {
    EXPECT_TRUE(t.Remove(v)) << v;
    ASSERT_TRUE(t.CheckInvariants(&err)) << "after removing " << v << ": "
                                         << err;
  }
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.Height(), 1u);  // collapsed back to a lone leaf
  EXPECT_TRUE(t.Contains(10));
  EXPECT_GT(t.stats().merges, 0u);
}

TEST(SamtreeTest, ManyInsertsKeepInvariantsAndContents) {
  Samtree t(SmallConfig(8));
  std::map<VertexId, Weight> shadow;
  Xoshiro256 rng(99);
  for (int i = 0; i < 2000; ++i) {
    const VertexId v = rng.NextUint64(5000);
    const Weight w = 0.01 + rng.NextDouble();
    t.Insert(v, w);
    shadow[v] = w;
  }
  EXPECT_EQ(t.size(), shadow.size());
  std::string err;
  ASSERT_TRUE(t.CheckInvariants(&err)) << err;
  const auto got = AsMap(t);
  ASSERT_EQ(got.size(), shadow.size());
  for (const auto& [v, w] : shadow) {
    auto it = got.find(v);
    ASSERT_NE(it, got.end()) << v;
    ASSERT_NEAR(it->second, w, 1e-9) << v;  // Fenwick rounding tolerance
  }
}

TEST(SamtreeTest, HeightGrowsLogarithmically) {
  Samtree t(SmallConfig(4));
  for (VertexId v = 0; v < 1000; ++v) t.Insert(v, 1.0);
  // Capacity 4, 1000 elements: height must stay well below a degenerate
  // linear chain but above one level.
  EXPECT_GE(t.Height(), 3u);
  EXPECT_LE(t.Height(), 12u);
  std::string err;
  EXPECT_TRUE(t.CheckInvariants(&err)) << err;
}

TEST(SamtreeTest, DescendingInsertUpdatesMinKeys) {
  Samtree t(SmallConfig(4));
  for (VertexId v = 100; v > 0; --v) t.Insert(v, 1.0);
  EXPECT_EQ(t.size(), 100u);
  std::string err;
  ASSERT_TRUE(t.CheckInvariants(&err)) << err;
  for (VertexId v = 1; v <= 100; ++v) EXPECT_TRUE(t.Contains(v)) << v;
}

TEST(SamtreeTest, TotalWeightTracksUpdatesAndRemovals) {
  Samtree t(SmallConfig(4));
  for (VertexId v = 0; v < 50; ++v) t.Insert(v, 1.0);
  EXPECT_NEAR(t.TotalWeight(), 50.0, 1e-9);
  t.Update(10, 5.0);
  EXPECT_NEAR(t.TotalWeight(), 54.0, 1e-9);
  t.Remove(10);
  EXPECT_NEAR(t.TotalWeight(), 49.0, 1e-9);
}

TEST(SamtreeTest, SampleWeightedReturnsOnlyStoredNeighbors) {
  Samtree t(SmallConfig(4));
  std::set<VertexId> inserted;
  for (VertexId v = 0; v < 100; v += 3) {
    t.Insert(v, 0.5 + static_cast<double>(v));
    inserted.insert(v);
  }
  Xoshiro256 rng(5);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(inserted.count(t.SampleWeighted(rng)));
    EXPECT_TRUE(inserted.count(t.SampleUniform(rng)));
  }
}

TEST(SamtreeTest, SampleManyFillsOutput) {
  Samtree t(SmallConfig());
  t.Insert(1, 1.0);
  t.Insert(2, 1.0);
  Xoshiro256 rng(6);
  std::vector<VertexId> out;
  t.SampleWeighted(50, rng, &out);
  EXPECT_EQ(out.size(), 50u);
  t.SampleUniform(25, rng, &out);
  EXPECT_EQ(out.size(), 75u);
}

TEST(SamtreeTest, MemoryGrowsWithContentAndSplitsIntoCategories) {
  Samtree t(SmallConfig(16));
  const std::size_t empty_bytes = t.MemoryUsage();
  for (VertexId v = 0; v < 500; ++v) t.Insert(v, 1.0);
  const MemoryBreakdown mem = t.Memory();
  EXPECT_GT(mem.topology_bytes, 0u);
  EXPECT_GT(mem.index_bytes, 0u);
  EXPECT_GT(mem.Total(), empty_bytes);
}

TEST(SamtreeTest, CompressionReducesTopologyBytes) {
  constexpr VertexId kBase = 0x00AB00CD00000000ULL;
  Samtree compressed(SmallConfig(64, 0, true));
  Samtree raw(SmallConfig(64, 0, false));
  for (VertexId i = 0; i < 2000; ++i) {
    compressed.Insert(kBase + i, 1.0);
    raw.Insert(kBase + i, 1.0);
  }
  EXPECT_LT(compressed.Memory().topology_bytes,
            raw.Memory().topology_bytes * 3 / 4);
  // Contents identical regardless of encoding.
  EXPECT_EQ(AsMap(compressed), AsMap(raw));
}

TEST(SamtreeTest, StatsCountLeafAndInternalOps) {
  Samtree t(SmallConfig(4));
  for (VertexId v = 0; v < 100; ++v) t.Insert(v, 1.0);
  const SamtreeOpStats& s = t.stats();
  EXPECT_GT(s.leaf_ops, 0u);
  EXPECT_GT(s.leaf_splits, 0u);
  EXPECT_GT(s.internal_ops, 0u);
  // Leaf updates dominate (Table V).
  EXPECT_GT(s.leaf_ops, s.internal_ops);
}

TEST(SamtreeTest, MoveSemantics) {
  Samtree a(SmallConfig());
  a.Insert(1, 1.0);
  a.Insert(2, 2.0);
  Samtree b = std::move(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_TRUE(b.Contains(1));
  a = std::move(b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(SamtreeTest, LargeCapacitySingleLeafBehaviour) {
  Samtree t(SmallConfig(256));
  for (VertexId v = 0; v < 256; ++v) t.Insert(v, 1.0);
  EXPECT_EQ(t.Height(), 1u);
  t.Insert(256, 1.0);
  EXPECT_EQ(t.Height(), 2u);
}


TEST(SamtreeBulkBuildTest, EqualsIncrementalConstruction) {
  Xoshiro256 rng(41);
  std::vector<std::pair<VertexId, Weight>> nbrs;
  Samtree incremental(SmallConfig(16));
  for (int i = 0; i < 3000; ++i) {
    const VertexId v = rng.NextUint64(10000);
    const Weight w = 0.01 + rng.NextDouble();
    nbrs.emplace_back(v, w);
    incremental.Insert(v, w);
  }
  Samtree bulk = Samtree::BulkBuild(nbrs, SmallConfig(16));

  EXPECT_EQ(bulk.size(), incremental.size());
  EXPECT_NEAR(bulk.TotalWeight(), incremental.TotalWeight(), 1e-6);
  std::string err;
  ASSERT_TRUE(bulk.CheckInvariants(&err)) << err;
  const auto a = AsMap(bulk);
  const auto b = AsMap(incremental);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [v, w] : b) {
    ASSERT_NEAR(a.at(v), w, 1e-9) << v;
  }
}

TEST(SamtreeBulkBuildTest, EdgeSizes) {
  // Empty.
  EXPECT_TRUE(Samtree::BulkBuild({}, SmallConfig(4)).empty());
  // Single.
  Samtree one = Samtree::BulkBuild({{7, 2.0}}, SmallConfig(4));
  EXPECT_EQ(one.size(), 1u);
  EXPECT_NEAR(*one.GetWeight(7), 2.0, 1e-12);
  // Exactly capacity, capacity + 1 and a large power of two.
  std::string err;
  for (std::size_t n : {4u, 5u, 1024u}) {
    std::vector<std::pair<VertexId, Weight>> nbrs;
    for (VertexId v = 0; v < n; ++v) nbrs.emplace_back(v * 3, 1.0);
    Samtree t = Samtree::BulkBuild(nbrs, SmallConfig(4));
    ASSERT_EQ(t.size(), n);
    ASSERT_TRUE(t.CheckInvariants(&err)) << "n=" << n << ": " << err;
  }
}

TEST(SamtreeBulkBuildTest, DuplicatesKeepLastWeight) {
  Samtree t = Samtree::BulkBuild({{5, 1.0}, {6, 2.0}, {5, 9.0}},
                                 SmallConfig(4));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_NEAR(*t.GetWeight(5), 9.0, 1e-12);
}

TEST(SamtreeBulkBuildTest, BuiltTreeAcceptsDynamicOps) {
  std::vector<std::pair<VertexId, Weight>> nbrs;
  for (VertexId v = 0; v < 500; ++v) nbrs.emplace_back(v, 1.0);
  Samtree t = Samtree::BulkBuild(nbrs, SmallConfig(8));
  t.Insert(10000, 2.0);
  EXPECT_TRUE(t.Remove(250));
  EXPECT_TRUE(t.Update(100, 5.0));
  EXPECT_EQ(t.size(), 500u);
  std::string err;
  ASSERT_TRUE(t.CheckInvariants(&err)) << err;
  Xoshiro256 rng(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(t.SampleWeighted(rng), 250u);
  }
}


TEST(SamtreeTest, MergeWithLeftSiblingWhenRightmostUnderflows) {
  // Drain only the largest IDs so the rightmost leaf underflows and must
  // merge with its LEFT sibling (no right sibling exists).
  Samtree t(SmallConfig(4));
  for (VertexId v = 1; v <= 40; ++v) t.Insert(v, 1.0);
  std::string err;
  for (VertexId v = 40; v > 5; --v) {
    ASSERT_TRUE(t.Remove(v)) << v;
    ASSERT_TRUE(t.CheckInvariants(&err)) << "after removing " << v << ": "
                                         << err;
  }
  EXPECT_EQ(t.size(), 5u);
  for (VertexId v = 1; v <= 5; ++v) EXPECT_TRUE(t.Contains(v));
}

TEST(SamtreeTest, CloneIsIndependentAndEqual) {
  Samtree a(SmallConfig(8));
  Xoshiro256 rng(77);
  for (int i = 0; i < 500; ++i) {
    a.Insert(rng.NextUint64(2000), 0.01 + rng.NextDouble());
  }
  Samtree b = a.Clone();
  EXPECT_EQ(b.size(), a.size());
  std::string err;
  ASSERT_TRUE(b.CheckInvariants(&err)) << err;
  const auto ma = AsMap(a);
  auto mb = AsMap(b);
  ASSERT_EQ(ma.size(), mb.size());
  for (const auto& [v, w] : ma) ASSERT_NEAR(mb.at(v), w, 1e-9) << v;

  // Mutating the clone leaves the original untouched.
  b.Insert(999999, 5.0);
  b.Remove(ma.begin()->first);
  EXPECT_FALSE(a.Contains(999999));
  EXPECT_TRUE(a.Contains(ma.begin()->first));
}

}  // namespace
}  // namespace platod2gl
