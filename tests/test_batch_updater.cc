// BatchUpdater tests: the latch-free PALM-style path must be semantically
// identical to sequential application (paper Section VI-B / Appendix B).
#include "concurrency/batch_updater.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "gen/generators.h"

namespace platod2gl {
namespace {

std::map<VertexId, std::map<VertexId, Weight>> Snapshot(
    const TopologyStore& store) {
  std::map<VertexId, std::map<VertexId, Weight>> snap;
  store.ForEachSource([&](VertexId s, const Samtree& tree) {
    for (const auto& [d, w] : tree.Neighbors()) snap[s][d] = w;
  });
  return snap;
}

void ExpectSameContents(const TopologyStore& a, const TopologyStore& b) {
  const auto sa = Snapshot(a);
  const auto sb = Snapshot(b);
  ASSERT_EQ(sa.size(), sb.size());
  for (const auto& [s, nbrs] : sa) {
    auto it = sb.find(s);
    ASSERT_NE(it, sb.end()) << "source " << s;
    ASSERT_EQ(nbrs.size(), it->second.size()) << "source " << s;
    for (const auto& [d, w] : nbrs) {
      auto jt = it->second.find(d);
      ASSERT_NE(jt, it->second.end()) << s << "->" << d;
      ASSERT_NEAR(w, jt->second, 1e-9) << s << "->" << d;
    }
  }
}

std::vector<EdgeUpdate> RandomBatch(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<EdgeUpdate> batch;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = rng.NextDouble();
    EdgeUpdate u;
    u.edge = Edge{rng.NextUint64(64) + 1, rng.NextUint64(256) + 1,
                  0.1 + rng.NextDouble(), 0};
    u.kind = r < 0.7 ? UpdateKind::kInsert
                     : (r < 0.85 ? UpdateKind::kInPlaceUpdate
                                 : UpdateKind::kDelete);
    batch.push_back(u);
  }
  return batch;
}

TEST(BatchUpdaterTest, EmptyBatchIsNoop) {
  TopologyStore store;
  ThreadPool pool(4);
  BatchUpdater updater(&store, &pool);
  updater.ApplyBatch({});
  EXPECT_EQ(store.NumEdges(), 0u);
}

TEST(BatchUpdaterTest, SingleSourceBatch) {
  TopologyStore store;
  ThreadPool pool(4);
  BatchUpdater updater(&store, &pool);
  std::vector<EdgeUpdate> batch;
  for (VertexId d = 1; d <= 100; ++d) {
    batch.push_back({UpdateKind::kInsert, Edge{7, d, 1.0, 0}});
  }
  updater.ApplyBatch(batch);
  EXPECT_EQ(store.Degree(7), 100u);
  EXPECT_EQ(store.NumEdges(), 100u);
}

TEST(BatchUpdaterTest, PerEdgeOrderPreservedWithinBatch) {
  // Insert then delete the same edge in one batch: it must end absent;
  // delete-then-insert must end present. The stable sort keeps order.
  TopologyStore store;
  ThreadPool pool(4);
  BatchUpdater updater(&store, &pool);
  store.AddEdge(1, 5, 1.0);
  std::vector<EdgeUpdate> batch = {
      {UpdateKind::kInsert, Edge{2, 9, 1.0, 0}},
      {UpdateKind::kDelete, Edge{2, 9, 0.0, 0}},
      {UpdateKind::kDelete, Edge{1, 5, 0.0, 0}},
      {UpdateKind::kInsert, Edge{1, 5, 3.0, 0}},
  };
  updater.ApplyBatch(batch);
  EXPECT_FALSE(store.HasEdge(2, 9));
  ASSERT_TRUE(store.HasEdge(1, 5));
  EXPECT_NEAR(*store.EdgeWeight(1, 5), 3.0, 1e-12);
}

class BatchUpdaterEquivalence
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BatchUpdaterEquivalence, LatchFreeMatchesSequential) {
  const auto [threads, seed] = GetParam();
  const auto batch = RandomBatch(5000, seed);

  TopologyStore seq_store, par_store;
  ThreadPool pool(threads);
  BatchUpdater seq(&seq_store, &pool), par(&par_store, &pool);
  seq.ApplySequential(batch);
  par.ApplyBatch(batch);

  EXPECT_EQ(par_store.NumEdges(), seq_store.NumEdges());
  ExpectSameContents(seq_store, par_store);
}

TEST_P(BatchUpdaterEquivalence, LatchBasedMatchesSequentialForInserts) {
  // The latch-based mode has no cross-thread ordering guarantees for
  // conflicting ops, so compare on an insert-only (commutative) batch.
  const auto [threads, seed] = GetParam();
  auto batch = RandomBatch(5000, seed);
  for (auto& u : batch) u.kind = UpdateKind::kInsert;

  TopologyStore seq_store, par_store;
  ThreadPool pool(threads);
  BatchUpdater seq(&seq_store, &pool), par(&par_store, &pool);
  seq.ApplySequential(batch);
  par.ApplyBatchLatchBased(batch);

  EXPECT_EQ(par_store.NumEdges(), seq_store.NumEdges());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchUpdaterEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 8),
                       ::testing::Values(1ull, 77ull)));

TEST(BatchUpdaterTest, RepeatedBatchesAccumulate) {
  TopologyStore store;
  ThreadPool pool(4);
  BatchUpdater updater(&store, &pool);
  RmatParams p;
  p.scale = 10;
  p.num_edges = 20000;
  const std::vector<Edge> edges = GenerateRmat(p);
  std::vector<EdgeUpdate> batch;
  for (const Edge& e : edges) {
    batch.push_back({UpdateKind::kInsert, e});
    if (batch.size() == 4096) {
      updater.ApplyBatch(batch);
      batch.clear();
    }
  }
  updater.ApplyBatch(batch);

  TopologyStore reference;
  for (const Edge& e : edges) reference.AddEdge(e.src, e.dst, e.weight);
  EXPECT_EQ(store.NumEdges(), reference.NumEdges());
  ExpectSameContents(reference, store);

  // Trees stay structurally valid after the concurrent build.
  std::string err;
  bool ok = true;
  store.ForEachSource([&](VertexId, const Samtree& t) {
    ok = ok && t.CheckInvariants(&err);
  });
  EXPECT_TRUE(ok) << err;
}

}  // namespace
}  // namespace platod2gl
