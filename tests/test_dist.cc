// Distributed-simulation tests: partitioners, shards and the cluster
// facade (DESIGN.md substitution for the paper's 74-server deployment).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "dist/cluster.h"
#include "dist/partitioner.h"
#include "dist/shard.h"
#include "gen/generators.h"

namespace platod2gl {
namespace {

TEST(PartitionerTest, HashBySourceIsStableAndInRange) {
  HashBySourcePartitioner p(8);
  for (VertexId v = 0; v < 1000; ++v) {
    const std::size_t s = p.ShardOf(v);
    EXPECT_LT(s, 8u);
    EXPECT_EQ(s, p.ShardOf(v)) << "must be deterministic";
  }
}

TEST(PartitionerTest, HashBySourceBalancesLoad) {
  HashBySourcePartitioner p(8);
  std::vector<int> counts(8, 0);
  for (VertexId v = 0; v < 80000; ++v) ++counts[p.ShardOf(v)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 800);
}

TEST(PartitionerTest, RangePartitionerContiguous) {
  RangePartitioner p(4, 1000);
  EXPECT_EQ(p.ShardOf(0), 0u);
  EXPECT_LE(p.ShardOf(999), 3u);
  EXPECT_EQ(p.ShardOf(5000), 3u);  // out-of-universe clamps to last shard
  // Monotone.
  std::size_t prev = 0;
  for (VertexId v = 0; v < 1000; v += 10) {
    EXPECT_GE(p.ShardOf(v), prev);
    prev = p.ShardOf(v);
  }
}

TEST(ShardTest, CountsRequests) {
  GraphShard shard;
  shard.Apply({UpdateKind::kInsert, Edge{1, 2, 1.0, 0}});
  Xoshiro256 rng(1);
  std::vector<VertexId> out;
  shard.SampleNeighbors(1, 5, true, rng, &out);
  EXPECT_EQ(shard.requests_served(), 2u);
  EXPECT_EQ(out.size(), 5u);
}

TEST(ClusterTest, RoutesUpdatesToOwners) {
  GraphCluster cluster(ClusterConfig{.num_shards = 4});
  for (VertexId s = 1; s <= 100; ++s) {
    cluster.Apply({UpdateKind::kInsert, Edge{s, s + 1000, 1.0, 0}});
  }
  EXPECT_EQ(cluster.NumEdges(), 100u);
  // Each edge lives on exactly the shard its source hashes to.
  for (VertexId s = 1; s <= 100; ++s) {
    const std::size_t owner = cluster.partitioner().ShardOf(s);
    EXPECT_EQ(cluster.shard(owner).store().Degree(s), 1u);
    EXPECT_EQ(cluster.Degree(s), 1u);
    for (std::size_t other = 0; other < cluster.num_shards(); ++other) {
      if (other == owner) continue;
      EXPECT_EQ(cluster.shard(other).store().Degree(s), 0u);
    }
  }
}

TEST(ClusterTest, ApplyBatchMatchesSequentialRouting) {
  RmatParams p;
  p.scale = 10;
  p.num_edges = 5000;
  const std::vector<Edge> edges = GenerateRmat(p);

  GraphCluster a(ClusterConfig{.num_shards = 4});
  GraphCluster b(ClusterConfig{.num_shards = 4});
  std::vector<EdgeUpdate> batch;
  for (const Edge& e : edges) {
    a.Apply({UpdateKind::kInsert, e});
    batch.push_back({UpdateKind::kInsert, e});
  }
  b.ApplyBatch(batch);
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(a.shard(s).store().NumEdges(), b.shard(s).store().NumEdges());
  }
}

TEST(ClusterTest, BatchedSamplingPreservesSeedOrder) {
  GraphCluster cluster(ClusterConfig{.num_shards = 4});
  // Distinguishable neighbourhoods: seed s only links to s * 10.
  std::vector<VertexId> seeds;
  for (VertexId s = 1; s <= 50; ++s) {
    cluster.Apply({UpdateKind::kInsert, Edge{s, s * 10, 1.0, 0}});
    seeds.push_back(s);
  }
  const NeighborBatch batch =
      cluster.SampleNeighbors(seeds, 4, /*weighted=*/true, /*seed=*/9);
  ASSERT_EQ(batch.NumSeeds(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::size_t j = batch.offsets[i]; j < batch.offsets[i + 1]; ++j) {
      EXPECT_EQ(batch.neighbors[j], seeds[i] * 10);
    }
  }
}

TEST(ClusterTest, DanglingSeedsYieldEmptyRanges) {
  GraphCluster cluster(ClusterConfig{.num_shards = 2});
  cluster.Apply({UpdateKind::kInsert, Edge{1, 2, 1.0, 0}});
  const NeighborBatch batch =
      cluster.SampleNeighbors({1, 777, 1}, 3, true, 1);
  ASSERT_EQ(batch.NumSeeds(), 3u);
  EXPECT_EQ(batch.offsets[1] - batch.offsets[0], 3u);
  EXPECT_EQ(batch.offsets[2] - batch.offsets[1], 0u);  // dangling seed
  EXPECT_EQ(batch.offsets[3] - batch.offsets[2], 3u);
}

TEST(ClusterTest, VirtualNetworkAccounting) {
  GraphCluster cluster(
      ClusterConfig{.num_shards = 4, .rpc_latency_us = 100});
  std::vector<EdgeUpdate> batch;
  for (VertexId s = 1; s <= 40; ++s) {
    batch.push_back({UpdateKind::kInsert, Edge{s, s + 1, 1.0, 0}});
  }
  cluster.ApplyBatch(batch);
  // Batched: at most one RPC per shard, far less than one per edge.
  EXPECT_LE(cluster.stats().rpcs, 4u);
  EXPECT_EQ(cluster.stats().virtual_network_us,
            cluster.stats().rpcs * 100u);
}

TEST(ClusterTest, LoadImbalanceNearOneOnUniformKeys) {
  GraphCluster cluster(ClusterConfig{.num_shards = 4});
  std::vector<EdgeUpdate> batch;
  for (VertexId s = 1; s <= 40000; ++s) {
    batch.push_back({UpdateKind::kInsert, Edge{s, s + 1, 1.0, 0}});
  }
  cluster.ApplyBatch(batch);
  EXPECT_LT(cluster.LoadImbalance(), 1.2);
}

}  // namespace
}  // namespace platod2gl
