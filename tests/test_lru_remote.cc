// LruCache and RemoteSubgraphSampler tests.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/lru_cache.h"
#include "dist/remote_sampler.h"

namespace platod2gl {
namespace {

TEST(LruCacheTest, BasicPutGet) {
  LruCache<int, std::string> cache(2);
  EXPECT_EQ(cache.Get(1), nullptr);
  cache.Put(1, "one");
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), "one");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Get(1);      // 1 becomes most recent
  cache.Put(3, 30);  // evicts 2
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCacheTest, PutRefreshesRecency) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // overwrite: 1 most recent, no eviction
  EXPECT_EQ(cache.size(), 2u);
  cache.Put(3, 30);  // evicts 2
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_EQ(*cache.Get(1), 11);
}

TEST(LruCacheTest, HitRateAccounting) {
  LruCache<int, int> cache(4);
  cache.Put(1, 1);
  cache.Get(1);
  cache.Get(1);
  cache.Get(2);  // miss
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_NEAR(cache.HitRate(), 2.0 / 3.0, 1e-12);
}

TEST(LruCacheTest, CapacityOneChurn) {
  LruCache<int, int> cache(1);
  for (int i = 0; i < 100; ++i) cache.Put(i, i);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.Get(99), 99);
  EXPECT_EQ(cache.evictions(), 99u);
}

TEST(LruCacheTest, ValuePointerStableWhileCached) {
  LruCache<int, std::vector<int>> cache(8);
  std::vector<int>* p = cache.Put(1, {1, 2, 3});
  cache.Put(2, {4});
  cache.Get(1);  // recency moves must not invalidate the pointer
  EXPECT_EQ(cache.Get(1), p);
  EXPECT_EQ(p->size(), 3u);
}

TEST(RemoteSamplerTest, MatchesLocalSemantics) {
  GraphCluster cluster(ClusterConfig{.num_shards = 4});
  // Distinguishable two-hop chains: s -> s*10 -> s*100.
  std::vector<VertexId> seeds;
  std::vector<EdgeUpdate> batch;
  for (VertexId s = 1; s <= 40; ++s) {
    batch.push_back({UpdateKind::kInsert, Edge{s, s * 100, 1.0, 0}});
    batch.push_back(
        {UpdateKind::kInsert, Edge{s * 100, s * 100 + 7, 1.0, 0}});
    seeds.push_back(s);
  }
  cluster.ApplyBatch(batch);

  RemoteSubgraphSampler sampler(&cluster);
  const SampledSubgraph sg =
      sampler.Sample(seeds, {{.fanout = 3}, {.fanout = 2}}, /*seed=*/5);

  ASSERT_EQ(sg.layers.size(), 3u);
  ASSERT_EQ(sg.parents.size(), 2u);
  EXPECT_EQ(sg.layers[1].size(), seeds.size() * 3);
  // Every hop-1 vertex is its parent's unique neighbour.
  for (std::size_t j = 0; j < sg.layers[1].size(); ++j) {
    EXPECT_EQ(sg.layers[1][j], sg.layers[0][sg.parents[0][j]] * 100);
  }
  for (std::size_t j = 0; j < sg.layers[2].size(); ++j) {
    EXPECT_EQ(sg.layers[2][j], sg.layers[1][sg.parents[1][j]] + 7);
  }
}

TEST(RemoteSamplerTest, OneRpcRoundPerHopPerShard) {
  GraphCluster cluster(ClusterConfig{.num_shards = 4});
  std::vector<EdgeUpdate> batch;
  std::vector<VertexId> seeds;
  for (VertexId s = 1; s <= 200; ++s) {
    batch.push_back({UpdateKind::kInsert, Edge{s, s + 1, 1.0, 0}});
    seeds.push_back(s);
  }
  cluster.ApplyBatch(batch);
  const std::uint64_t rpcs_before = cluster.stats().rpcs;

  RemoteSubgraphSampler sampler(&cluster);
  sampler.Sample(seeds, {{.fanout = 5}, {.fanout = 5}}, 9);

  // 2 hops x at most 4 shards = at most 8 RPCs, regardless of the 200
  // seeds and the 1000-vertex hop-1 frontier.
  EXPECT_LE(cluster.stats().rpcs - rpcs_before, 8u);
}

TEST(RemoteSamplerTest, DanglingFrontier) {
  GraphCluster cluster(ClusterConfig{.num_shards = 2});
  cluster.Apply({UpdateKind::kInsert, Edge{1, 2, 1.0, 0}});  // 2 is a sink
  RemoteSubgraphSampler sampler(&cluster);
  const SampledSubgraph sg =
      sampler.Sample({1}, {{.fanout = 2}, {.fanout = 2}}, 3);
  EXPECT_EQ(sg.layers[1].size(), 2u);
  EXPECT_TRUE(sg.layers[2].empty());
}

}  // namespace
}  // namespace platod2gl
