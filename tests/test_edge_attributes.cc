// EdgeAttributeStore tests.
#include "storage/edge_attributes.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace platod2gl {
namespace {

TEST(EdgeAttributesTest, SetGetRemove) {
  EdgeAttributeStore store;
  EXPECT_EQ(store.Get(1, 2), nullptr);
  store.Set(1, 2, 0, {0.5f, 1.5f});
  const std::vector<float>* f = store.Get(1, 2);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(*f, (std::vector<float>{0.5f, 1.5f}));
  EXPECT_EQ(store.NumEdges(), 1u);
  EXPECT_TRUE(store.Remove(1, 2));
  EXPECT_FALSE(store.Remove(1, 2));
  EXPECT_EQ(store.Get(1, 2), nullptr);
}

TEST(EdgeAttributesTest, DirectionMatters) {
  EdgeAttributeStore store;
  store.Set(1, 2, 0, {1.0f});
  EXPECT_NE(store.Get(1, 2), nullptr);
  EXPECT_EQ(store.Get(2, 1), nullptr);
}

TEST(EdgeAttributesTest, RelationsAreIsolated) {
  EdgeAttributeStore store;
  store.Set(1, 2, 0, {1.0f});
  store.Set(1, 2, 1, {2.0f});
  EXPECT_EQ((*store.Get(1, 2, 0))[0], 1.0f);
  EXPECT_EQ((*store.Get(1, 2, 1))[0], 2.0f);
  EXPECT_EQ(store.NumEdges(), 2u);
}

TEST(EdgeAttributesTest, OverwriteKeepsPointerValid) {
  EdgeAttributeStore store;
  store.Set(3, 4, 0, {1.0f});
  const std::vector<float>* before = store.Get(3, 4);
  store.Set(3, 4, 0, {9.0f, 8.0f});
  EXPECT_EQ(store.Get(3, 4), before) << "values are heap-pinned";
  EXPECT_EQ(before->size(), 2u);
}

TEST(EdgeAttributesTest, SetViaEdgeStruct) {
  EdgeAttributeStore store;
  store.Set(Edge{7, 8, 1.0, 2}, {3.0f});
  EXPECT_NE(store.Get(7, 8, 2), nullptr);
}

TEST(EdgeAttributesTest, ConcurrentWriters) {
  EdgeAttributeStore store;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&store, t] {
      for (VertexId i = 0; i < 1000; ++i) {
        store.Set(static_cast<VertexId>(t), i, 0,
                  {static_cast<float>(t)});
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.NumEdges(), 8 * 1000u);
  for (int t = 0; t < 8; ++t) {
    const auto* f = store.Get(static_cast<VertexId>(t), 500, 0);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ((*f)[0], static_cast<float>(t));
  }
}

TEST(EdgeAttributesTest, MemoryGrowsWithContent) {
  EdgeAttributeStore store;
  const std::size_t before = store.MemoryUsage();
  for (VertexId i = 0; i < 500; ++i) {
    store.Set(1, i, 0, std::vector<float>(16, 1.0f));
  }
  EXPECT_GT(store.MemoryUsage(), before + 500 * 16 * sizeof(float));
}

}  // namespace
}  // namespace platod2gl
