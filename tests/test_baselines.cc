// Baseline store tests: PlatoGL (block KV + CSTable) and AliGraph
// (adjacency + alias tables) must be semantically identical to the
// PlatoD2GL store under the NeighborStore interface — the benches depend
// on this equivalence for a fair comparison.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <memory>
#include <vector>

#include "baselines/aligraph_store.h"
#include "baselines/platogl_store.h"
#include "baselines/samtree_store.h"
#include "common/random.h"

namespace platod2gl {
namespace {

std::vector<std::unique_ptr<NeighborStore>> AllStores() {
  std::vector<std::unique_ptr<NeighborStore>> stores;
  stores.push_back(std::make_unique<SamtreeStore>());
  stores.push_back(std::make_unique<SamtreeStore>(
      SamtreeConfig{.node_capacity = 256, .alpha = 0, .compress_ids = false}));
  stores.push_back(
      std::make_unique<PlatoGLStore>(PlatoGLStore::Config{.block_capacity = 8}));
  stores.push_back(std::make_unique<AliGraphStore>());
  return stores;
}

TEST(BaselineStoreTest, NamesDistinct) {
  auto stores = AllStores();
  EXPECT_EQ(stores[0]->Name(), "PlatoD2GL");
  EXPECT_EQ(stores[1]->Name(), "PlatoD2GL w/o CP");
  EXPECT_EQ(stores[2]->Name(), "PlatoGL");
  EXPECT_EQ(stores[3]->Name(), "AliGraph");
}

TEST(BaselineStoreTest, BasicCrudAcrossAllStores) {
  for (auto& store : AllStores()) {
    SCOPED_TRACE(store->Name());
    store->AddEdge(1, 2, 0.5);
    store->AddEdge(1, 3, 1.5);
    EXPECT_EQ(store->Degree(1), 2u);
    EXPECT_EQ(store->NumEdges(), 2u);

    // Re-insert refreshes, no duplicate.
    store->AddEdge(1, 2, 0.7);
    EXPECT_EQ(store->NumEdges(), 2u);

    EXPECT_TRUE(store->UpdateEdge(1, 3, 9.0));
    EXPECT_FALSE(store->UpdateEdge(1, 99, 1.0));

    EXPECT_TRUE(store->RemoveEdge(1, 2));
    EXPECT_FALSE(store->RemoveEdge(1, 2));
    EXPECT_EQ(store->Degree(1), 1u);
  }
}

TEST(BaselineStoreTest, SamplingSkewAcrossAllStores) {
  for (auto& store : AllStores()) {
    SCOPED_TRACE(store->Name());
    store->AddEdge(1, 100, 9.0);
    store->AddEdge(1, 200, 1.0);
    Xoshiro256 rng(3);
    std::vector<VertexId> out;
    ASSERT_TRUE(store->SampleNeighbors(1, 20000, rng, &out));
    int heavy = 0;
    for (VertexId v : out) heavy += (v == 100);
    EXPECT_NEAR(heavy / 20000.0, 0.9, 0.02);
    EXPECT_FALSE(store->SampleNeighbors(555, 5, rng, &out));
  }
}

TEST(BaselineStoreTest, ManyBlocksInPlatoGL) {
  PlatoGLStore store(PlatoGLStore::Config{.block_capacity = 4});
  for (VertexId d = 0; d < 100; ++d) store.AddEdge(7, d, 1.0);
  EXPECT_EQ(store.Degree(7), 100u);
  // Sampling across 25 blocks stays in range.
  Xoshiro256 rng(9);
  std::vector<VertexId> out;
  ASSERT_TRUE(store.SampleNeighbors(7, 1000, rng, &out));
  for (VertexId v : out) EXPECT_LT(v, 100u);
}

TEST(BaselineStoreTest, RandomizedEquivalenceUnderMixedOps) {
  auto stores = AllStores();
  std::map<VertexId, std::map<VertexId, Weight>> shadow;
  Xoshiro256 rng(31);
  for (int op = 0; op < 4000; ++op) {
    const VertexId s = rng.NextUint64(20) + 1;
    const VertexId d = rng.NextUint64(60) + 1;
    const Weight w = 0.1 + rng.NextDouble();
    const double r = rng.NextDouble();
    if (r < 0.6) {
      for (auto& st : stores) st->AddEdge(s, d, w);
      shadow[s][d] = w;
    } else if (r < 0.8) {
      const bool expect = shadow.count(s) && shadow[s].count(d);
      for (auto& st : stores) {
        EXPECT_EQ(st->UpdateEdge(s, d, w), expect) << st->Name();
      }
      if (expect) shadow[s][d] = w;
    } else {
      const bool expect = shadow.count(s) && shadow[s].erase(d) > 0;
      for (auto& st : stores) {
        EXPECT_EQ(st->RemoveEdge(s, d), expect) << st->Name();
      }
    }
  }
  std::size_t total = 0;
  for (auto& [s, nbrs] : shadow) {
    for (auto& st : stores) {
      EXPECT_EQ(st->Degree(s), nbrs.size()) << st->Name() << " src " << s;
    }
    total += nbrs.size();
  }
  for (auto& st : stores) EXPECT_EQ(st->NumEdges(), total) << st->Name();
}

TEST(BaselineStoreTest, MemoryOrderingMatchesPaper) {
  // Clustered 64-bit IDs, moderate degree: PlatoD2GL (with CP) must use
  // the least memory; PlatoGL pays per-block keys; AliGraph pays alias
  // duplication (Table IV's ordering).
  auto stores = AllStores();
  Xoshiro256 rng(11);
  constexpr VertexId kBase = 0x000A000B00000000ULL;
  for (VertexId s = 0; s < 1000; ++s) {
    for (int k = 0; k < 64; ++k) {
      const VertexId d = kBase + rng.NextUint64(1 << 16);
      for (auto& st : stores) st->AddEdge(kBase + s, d, 1.0);
    }
  }
  auto* ali = dynamic_cast<AliGraphStore*>(stores[3].get());
  ASSERT_NE(ali, nullptr);
  ali->FinalizeSamplingIndexes();

  const std::size_t d2gl = stores[0]->MemoryUsage();
  const std::size_t d2gl_nocp = stores[1]->MemoryUsage();
  const std::size_t platogl = stores[2]->MemoryUsage();
  const std::size_t aligraph = stores[3]->MemoryUsage();

  EXPECT_LT(d2gl, d2gl_nocp) << "compression must save memory";
  EXPECT_LT(d2gl, platogl);
  EXPECT_LT(d2gl, aligraph);
}

TEST(BaselineStoreTest, AliGraphRebuildsAliasLazily) {
  AliGraphStore store;
  store.AddEdge(1, 2, 1.0);
  Xoshiro256 rng(5);
  std::vector<VertexId> out;
  ASSERT_TRUE(store.SampleNeighbors(1, 3, rng, &out));
  store.AddEdge(1, 3, 100.0);  // marks dirty
  out.clear();
  ASSERT_TRUE(store.SampleNeighbors(1, 1000, rng, &out));
  int heavy = 0;
  for (VertexId v : out) heavy += (v == 3);
  EXPECT_GT(heavy, 900);  // new weight visible after lazy rebuild
}


TEST(PlatoGLInternalsTest, BlockKeysAreStableAndDistinct) {
  const std::string k1 = PlatoGLStore::MakeBlockKey(42, 0);
  const std::string k2 = PlatoGLStore::MakeBlockKey(42, 1);
  const std::string k3 = PlatoGLStore::MakeBlockKey(43, 0);
  EXPECT_EQ(k1.size(), 24u) << "the paper's composite key is 24 bytes";
  EXPECT_NE(k1, k2);
  EXPECT_NE(k1, k3);
  EXPECT_EQ(k1, PlatoGLStore::MakeBlockKey(42, 0)) << "must be stable";
  EXPECT_EQ(PlatoGLStore::MakeMetaKey(42).size(), 9u);
  EXPECT_NE(PlatoGLStore::MakeMetaKey(42), PlatoGLStore::MakeMetaKey(43));
}

TEST(PlatoGLInternalsTest, DegreeAcrossManyBlockBoundaries) {
  PlatoGLStore store(PlatoGLStore::Config{.block_capacity = 16});
  // 16 * 5 + 3 neighbours: five full blocks and one partial.
  for (VertexId d = 0; d < 83; ++d) store.AddEdgeFast(1, d + 100, 1.0);
  EXPECT_EQ(store.Degree(1), 83u);
  // Updates and removals reach into middle blocks.
  EXPECT_TRUE(store.UpdateEdge(1, 100 + 40, 9.0));
  EXPECT_TRUE(store.RemoveEdge(1, 100 + 40));
  EXPECT_EQ(store.Degree(1), 82u);
  // Sampling still covers all blocks.
  Xoshiro256 rng(1);
  std::vector<VertexId> out;
  ASSERT_TRUE(store.SampleNeighbors(1, 5000, rng, &out));
  std::set<VertexId> seen(out.begin(), out.end());
  EXPECT_GT(seen.size(), 70u);
}

TEST(PlatoGLInternalsTest, TailBlockDrainedAndReopened) {
  PlatoGLStore store(PlatoGLStore::Config{.block_capacity = 4});
  for (VertexId d = 0; d < 5; ++d) store.AddEdge(1, d + 10, 1.0);
  // The 5th neighbour sits alone in block 1; removing it drains the
  // tail block, and the next insert must reopen one cleanly.
  EXPECT_TRUE(store.RemoveEdge(1, 14));
  EXPECT_EQ(store.Degree(1), 4u);
  store.AddEdge(1, 99, 2.0);
  EXPECT_EQ(store.Degree(1), 5u);
  Xoshiro256 rng(2);
  std::vector<VertexId> out;
  ASSERT_TRUE(store.SampleNeighbors(1, 100, rng, &out));
  int fresh = 0;
  for (VertexId v : out) fresh += (v == 99);
  EXPECT_GT(fresh, 0);
}

TEST(PlatoGLInternalsTest, FixedChunkAllocationShowsInMemory) {
  // One neighbour still allocates a whole 64-entry sub-block chunk.
  PlatoGLStore one_edge;
  one_edge.AddEdgeFast(1, 2, 1.0);
  const MemoryBreakdown m = one_edge.Memory();
  EXPECT_GE(m.topology_bytes, PlatoGLStore::kAllocChunk * sizeof(VertexId));
}

TEST(BaselineStoreTest, SamplingDistributionsAgreeAcrossStores) {
  // All four systems must realise the *same* weighted distribution.
  auto stores = AllStores();
  Xoshiro256 gen(21);
  std::map<VertexId, Weight> weights;
  Weight total = 0.0;
  for (VertexId d = 0; d < 50; ++d) {
    const Weight w = 0.05 + gen.NextDouble();
    for (auto& st : stores) st->AddEdge(1, d + 1000, w);
    weights[d + 1000] = w;
    total += w;
  }
  for (auto& st : stores) {
    SCOPED_TRACE(st->Name());
    st->FinishBatch();
    Xoshiro256 rng(22);
    std::vector<VertexId> out;
    ASSERT_TRUE(st->SampleNeighbors(1, 100000, rng, &out));
    std::map<VertexId, int> hits;
    for (VertexId v : out) ++hits[v];
    for (const auto& [v, w] : weights) {
      ASSERT_NEAR(hits[v] / 100000.0, w / total, 0.012) << "vertex " << v;
    }
  }
}

TEST(BaselineStoreTest, FastPathThenDynamicOpsInterleave) {
  // Bulk-load via AddEdgeFast, then run checked dynamic ops on top:
  // the stores must not care which path created an edge.
  for (auto& store : AllStores()) {
    SCOPED_TRACE(store->Name());
    for (VertexId d = 0; d < 200; ++d) {
      store->AddEdgeFast(1, d + 10, 1.0);
    }
    EXPECT_TRUE(store->UpdateEdge(1, 10, 5.0));
    EXPECT_TRUE(store->RemoveEdge(1, 11));
    store->AddEdge(1, 10, 7.0);  // refresh via checked path
    EXPECT_EQ(store->Degree(1), 199u);
    EXPECT_EQ(store->NumEdges(), 199u);
  }
}

}  // namespace
}  // namespace platod2gl
