// GNN kernel tests: forward correctness plus finite-difference gradient
// checks for every backward implementation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "gnn/layers.h"
#include "gnn/ops.h"
#include "gnn/tensor.h"

namespace platod2gl {
namespace {

TEST(TensorTest, ConstructionAndIndexing) {
  Tensor t(2, 3, 1.5f);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t(1, 2), 1.5f);
  t(0, 0) = 7.0f;
  EXPECT_EQ(t(0, 0), 7.0f);
}

TEST(TensorTest, GlorotBounded) {
  Xoshiro256 rng(1);
  Tensor t = Tensor::Glorot(50, 50, rng);
  const double limit = std::sqrt(6.0 / 100.0);
  for (std::size_t r = 0; r < 50; ++r) {
    for (std::size_t c = 0; c < 50; ++c) {
      EXPECT_LE(std::abs(t(r, c)), limit + 1e-6);
    }
  }
  EXPECT_GT(t.Norm(), 0.0);
}

TEST(OpsTest, MatMulSmall) {
  Tensor a(2, 3), b(3, 2);
  float va = 1.0f;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = va++;
  float vb = 1.0f;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 2; ++c) b(r, c) = vb++;
  const Tensor c = MatMul(a, b);
  // [[1,2,3],[4,5,6]] * [[1,2],[3,4],[5,6]] = [[22,28],[49,64]]
  EXPECT_FLOAT_EQ(c(0, 0), 22.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 28.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 49.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 64.0f);
}

TEST(OpsTest, TransposedMatMulsAgreeWithExplicit) {
  Xoshiro256 rng(2);
  Tensor a = Tensor::Glorot(4, 6, rng);
  Tensor b = Tensor::Glorot(4, 3, rng);
  const Tensor atb = MatMulATB(a, b);  // 6x3
  ASSERT_EQ(atb.rows(), 6u);
  ASSERT_EQ(atb.cols(), 3u);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      float expect = 0.0f;
      for (std::size_t k = 0; k < 4; ++k) expect += a(k, i) * b(k, j);
      EXPECT_NEAR(atb(i, j), expect, 1e-5);
    }
  }
  Tensor c = Tensor::Glorot(5, 6, rng);
  const Tensor abt = MatMulABT(a, c);  // 4x5
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      float expect = 0.0f;
      for (std::size_t k = 0; k < 6; ++k) expect += a(i, k) * c(j, k);
      EXPECT_NEAR(abt(i, j), expect, 1e-5);
    }
  }
}

TEST(OpsTest, ReluAndGrad) {
  Tensor x(1, 4);
  x(0, 0) = -1.0f;
  x(0, 1) = 0.0f;
  x(0, 2) = 2.0f;
  x(0, 3) = -0.5f;
  const Tensor y = Relu(x);
  EXPECT_FLOAT_EQ(y(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y(0, 2), 2.0f);
  Tensor up(1, 4, 1.0f);
  const Tensor g = ReluGrad(up, x);
  EXPECT_FLOAT_EQ(g(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(g(0, 1), 0.0f);  // non-differentiable point: subgradient 0
  EXPECT_FLOAT_EQ(g(0, 2), 1.0f);
}

TEST(OpsTest, SegmentMeanGroupsAndAverages) {
  Tensor v(4, 2);
  v(0, 0) = 1;  v(0, 1) = 2;   // seg 0
  v(1, 0) = 3;  v(1, 1) = 4;   // seg 1
  v(2, 0) = 5;  v(2, 1) = 6;   // seg 0
  v(3, 0) = 7;  v(3, 1) = 8;   // seg 1
  const SegmentMeanResult r = SegmentMean(v, {0, 1, 0, 1}, 3);
  EXPECT_FLOAT_EQ(r.mean(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(r.mean(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(r.mean(1, 0), 5.0f);
  EXPECT_FLOAT_EQ(r.mean(2, 0), 0.0f);  // empty segment -> zeros
  EXPECT_EQ(r.counts, (std::vector<std::uint32_t>{2, 2, 0}));
}

TEST(OpsTest, SoftmaxCrossEntropyKnownValues) {
  Tensor logits(2, 2);
  logits(0, 0) = 100.0f;  // confidently class 0, label 0 -> ~0 loss
  logits(0, 1) = 0.0f;
  logits(1, 0) = 0.0f;    // uniform, label 1 -> loss ln 2
  logits(1, 1) = 0.0f;
  const SoftmaxCEResult r = SoftmaxCrossEntropy(logits, {0, 1});
  EXPECT_NEAR(r.loss, 0.5 * std::log(2.0), 1e-5);
  EXPECT_EQ(r.labelled, 2u);
  EXPECT_GE(r.correct, 1u);
}

TEST(OpsTest, SoftmaxSkipsUnlabeled) {
  Tensor logits(2, 3, 0.0f);
  const SoftmaxCEResult r = SoftmaxCrossEntropy(logits, {-1, -1});
  EXPECT_EQ(r.labelled, 0u);
  EXPECT_DOUBLE_EQ(r.loss, 0.0);
}

// --- finite-difference gradient checks -------------------------------------

// Numerically differentiates the CE loss w.r.t. one logit.
TEST(GradCheckTest, SoftmaxCrossEntropyGradient) {
  Xoshiro256 rng(3);
  Tensor logits = Tensor::Glorot(3, 4, rng);
  const std::vector<std::int64_t> labels = {2, 0, -1};
  const SoftmaxCEResult base = SoftmaxCrossEntropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      Tensor plus = logits, minus = logits;
      plus(r, c) += eps;
      minus(r, c) -= eps;
      const double num =
          (SoftmaxCrossEntropy(plus, labels).loss -
           SoftmaxCrossEntropy(minus, labels).loss) /
          (2.0 * eps);
      EXPECT_NEAR(base.grad_logits(r, c), num, 5e-3)
          << "logit (" << r << "," << c << ")";
    }
  }
}

// End-to-end gradient check through Dense: loss = CE(Dense(x)).
TEST(GradCheckTest, DenseWeightAndInputGradients) {
  Xoshiro256 rng(4);
  Dense fc(3, 2, rng);
  Tensor x = Tensor::Glorot(4, 3, rng);
  const std::vector<std::int64_t> labels = {0, 1, 0, 1};

  auto loss_fn = [&](const Dense& layer, const Tensor& input) {
    return SoftmaxCrossEntropy(layer.Forward(input), labels).loss;
  };

  fc.ZeroGrad();
  const Tensor logits = fc.Forward(x);
  const SoftmaxCEResult ce = SoftmaxCrossEntropy(logits, labels);
  const Tensor gx = fc.Backward(x, ce.grad_logits);

  const float eps = 1e-3f;
  // Weight gradient.
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      Dense plus = fc, minus = fc;
      plus.weights()(r, c) += eps;
      minus.weights()(r, c) -= eps;
      const double num =
          (loss_fn(plus, x) - loss_fn(minus, x)) / (2.0 * eps);
      EXPECT_NEAR(fc.weight_grad()(r, c), num, 5e-3);
    }
  }
  // Bias gradient.
  for (std::size_t c = 0; c < 2; ++c) {
    Dense plus = fc, minus = fc;
    plus.bias()[c] += eps;
    minus.bias()[c] -= eps;
    const double num = (loss_fn(plus, x) - loss_fn(minus, x)) / (2.0 * eps);
    EXPECT_NEAR(fc.bias_grad()[c], num, 5e-3);
  }
  // Input gradient.
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      Tensor plus = x, minus = x;
      plus(r, c) += eps;
      minus(r, c) -= eps;
      const double num =
          (loss_fn(fc, plus) - loss_fn(fc, minus)) / (2.0 * eps);
      EXPECT_NEAR(gx(r, c), num, 5e-3);
    }
  }
}

// Gradient check through the full SageLayer (self + neigh + ReLU).
TEST(GradCheckTest, SageLayerInputGradients) {
  Xoshiro256 rng(5);
  SageLayer layer(3, 3, 2, rng);
  Tensor x_self = Tensor::Glorot(4, 3, rng);
  Tensor neigh = Tensor::Glorot(4, 3, rng);
  const std::vector<std::int64_t> labels = {0, 1, 1, 0};

  auto loss_fn = [&](const Tensor& xs, const Tensor& nm) {
    SageLayer copy = layer;
    SageLayer::Cache cache;
    return SoftmaxCrossEntropy(copy.Forward(xs, nm, &cache), labels).loss;
  };

  layer.ZeroGrad();
  SageLayer::Cache cache;
  const Tensor out = layer.Forward(x_self, neigh, &cache);
  const SoftmaxCEResult ce = SoftmaxCrossEntropy(out, labels);
  Tensor g_self, g_neigh;
  layer.Backward(cache, ce.grad_logits, &g_self, &g_neigh);

  const float eps = 1e-3f;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      Tensor p = x_self, m = x_self;
      p(r, c) += eps;
      m(r, c) -= eps;
      EXPECT_NEAR(g_self(r, c),
                  (loss_fn(p, neigh) - loss_fn(m, neigh)) / (2.0 * eps),
                  5e-3);
      Tensor pn = neigh, mn = neigh;
      pn(r, c) += eps;
      mn(r, c) -= eps;
      EXPECT_NEAR(g_neigh(r, c),
                  (loss_fn(x_self, pn) - loss_fn(x_self, mn)) / (2.0 * eps),
                  5e-3);
    }
  }
}

// SegmentMean backward: check against numeric differentiation of a scalar
// loss sum(mean^2)/2.
TEST(GradCheckTest, SegmentMeanGradient) {
  Xoshiro256 rng(6);
  Tensor v = Tensor::Glorot(6, 2, rng);
  const std::vector<std::uint32_t> seg = {0, 1, 0, 2, 1, 0};

  auto loss_fn = [&](const Tensor& values) {
    const SegmentMeanResult r = SegmentMean(values, seg, 3);
    double l = 0.0;
    for (std::size_t i = 0; i < r.mean.rows(); ++i) {
      for (std::size_t j = 0; j < r.mean.cols(); ++j) {
        l += 0.5 * r.mean(i, j) * r.mean(i, j);
      }
    }
    return l;
  };

  const SegmentMeanResult fwd = SegmentMean(v, seg, 3);
  Tensor upstream = fwd.mean;  // dL/dmean = mean for L = sum(mean^2)/2
  const Tensor g = SegmentMeanGrad(upstream, seg, fwd.counts, 6);

  const float eps = 1e-3f;
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      Tensor p = v, m = v;
      p(r, c) += eps;
      m(r, c) -= eps;
      EXPECT_NEAR(g(r, c), (loss_fn(p) - loss_fn(m)) / (2.0 * eps), 5e-3);
    }
  }
}

TEST(OptimizerTest, SgdStepMovesAgainstGradient) {
  Xoshiro256 rng(7);
  Dense fc(2, 2, rng);
  Tensor x(1, 2, 1.0f);
  fc.ZeroGrad();
  const Tensor y = fc.Forward(x);
  const SoftmaxCEResult ce = SoftmaxCrossEntropy(y, {0});
  fc.Backward(x, ce.grad_logits);
  const double before = ce.loss;
  fc.SgdStep(0.5f);
  const double after = SoftmaxCrossEntropy(fc.Forward(x), {0}).loss;
  EXPECT_LT(after, before);
}

TEST(OptimizerTest, AdamConvergesOnToyProblem) {
  Xoshiro256 rng(8);
  Dense fc(4, 3, rng);
  Tensor x = Tensor::Glorot(12, 4, rng);
  std::vector<std::int64_t> labels;
  for (int i = 0; i < 12; ++i) labels.push_back(i % 3);
  double last = 1e9;
  for (int step = 0; step < 800; ++step) {
    fc.ZeroGrad();
    const SoftmaxCEResult ce = SoftmaxCrossEntropy(fc.Forward(x), labels);
    fc.Backward(x, ce.grad_logits);
    fc.AdamStep(0.05f);
    last = ce.loss;
  }
  EXPECT_LT(last, 0.1) << "a linear model must overfit 12 random points";
}


TEST(GcnLayerTest, DanglingRowsPassSelfFeaturesThrough) {
  Xoshiro256 rng(20);
  GcnLayer layer(3, 3, rng);
  // Identity-ish check: with count 0, combined == x_self exactly.
  Tensor x(2, 3);
  for (std::size_t c = 0; c < 3; ++c) {
    x(0, c) = static_cast<float>(c + 1);
    x(1, c) = static_cast<float>(c + 1);
  }
  Tensor mean(2, 3, 5.0f);  // should be ignored for row 0 (count 0)
  GcnLayer::Cache cache;
  layer.Forward(x, mean, {0, 2}, &cache);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_FLOAT_EQ(cache.combined(0, c), x(0, c));
    EXPECT_FLOAT_EQ(cache.combined(1, c), (x(1, c) + 2 * 5.0f) / 3.0f);
  }
}

TEST(GradCheckTest, GcnLayerInputGradients) {
  Xoshiro256 rng(21);
  GcnLayer layer(3, 2, rng);
  Tensor x_self = Tensor::Glorot(4, 3, rng);
  Tensor neigh = Tensor::Glorot(4, 3, rng);
  const std::vector<std::uint32_t> counts = {0, 1, 3, 10};
  const std::vector<std::int64_t> labels = {0, 1, 1, 0};

  auto loss_fn = [&](const Tensor& xs, const Tensor& nm) {
    GcnLayer copy = layer;
    GcnLayer::Cache cache;
    return SoftmaxCrossEntropy(copy.Forward(xs, nm, counts, &cache), labels)
        .loss;
  };

  layer.ZeroGrad();
  GcnLayer::Cache cache;
  const Tensor out = layer.Forward(x_self, neigh, counts, &cache);
  const SoftmaxCEResult ce = SoftmaxCrossEntropy(out, labels);
  Tensor g_self, g_neigh;
  layer.Backward(cache, ce.grad_logits, &g_self, &g_neigh);

  const float eps = 1e-3f;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      Tensor p = x_self, m = x_self;
      p(r, c) += eps;
      m(r, c) -= eps;
      EXPECT_NEAR(g_self(r, c),
                  (loss_fn(p, neigh) - loss_fn(m, neigh)) / (2.0 * eps),
                  5e-3);
      Tensor pn = neigh, mn = neigh;
      pn(r, c) += eps;
      mn(r, c) -= eps;
      EXPECT_NEAR(g_neigh(r, c),
                  (loss_fn(x_self, pn) - loss_fn(x_self, mn)) / (2.0 * eps),
                  5e-3);
    }
  }
}

TEST(GcnLayerTest, TrainsOnToyTask) {
  Xoshiro256 rng(22);
  GcnLayer layer(4, 2, rng);
  Tensor x = Tensor::Glorot(8, 4, rng);
  Tensor mean = Tensor::Glorot(8, 4, rng);
  const std::vector<std::uint32_t> counts(8, 4);
  std::vector<std::int64_t> labels;
  for (int i = 0; i < 8; ++i) labels.push_back(i % 2);
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 200; ++step) {
    layer.ZeroGrad();
    GcnLayer::Cache cache;
    const Tensor out = layer.Forward(x, mean, counts, &cache);
    const SoftmaxCEResult ce = SoftmaxCrossEntropy(out, labels);
    Tensor gs, gm;
    layer.Backward(cache, ce.grad_logits, &gs, &gm);
    layer.AdamStep(0.05f);
    if (step == 0) first = ce.loss;
    last = ce.loss;
  }
  EXPECT_LT(last, first * 0.5);
}

}  // namespace
}  // namespace platod2gl
