// Self-tests of the schedule-exploration harness (src/schedcheck/).
//
// These run in EVERY build configuration: the runtime is always compiled
// into the library, and the scenarios below use sched::TestMutex,
// sched::InstrumentedAtomic and sched::NonAtomic directly rather than the
// production shims (which route through the model only under
// PD2GL_SCHEDCHECK — tests/test_schedcheck_scenarios.cc covers those).
//
// The properties pinned here are the ones everything downstream leans on:
// exhaustive mode really enumerates (finds a bug that needs one specific
// preemption; respects the preemption bound), failures are deterministic
// and replayable (identical trace/choices across runs; Options::replay
// reproduces them), the virtual locks give mutual exclusion and detect
// deadlock, the condvar model is atomic-release-and-wait but not sticky
// (lost wakeups surface as deadlocks), and NonAtomic intervals catch
// data races.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "schedcheck/sched.h"

namespace platod2gl::sched {
namespace {

// Classic lost update: two threads each do a split load+store increment on
// an atomic cell. Needs exactly one preemption (between one thread's load
// and its store) to lose an increment.
void LostUpdateScenario(Test& t) {
  auto v = std::make_shared<InstrumentedAtomic<int>>(0);
  for (int i = 0; i < 2; ++i) {
    t.Spawn("inc" + std::to_string(i), [v] { v->store(v->load() + 1); });
  }
  t.AfterRun([v] { Check(v->load() == 2, "lost update: v != 2"); });
}

TEST(SchedCheckExhaustive, FindsLostUpdateWithOnePreemption) {
  Options opts;
  opts.mode = Mode::kExhaustive;
  opts.preemption_bound = 1;
  const Result r = Explore(opts, LostUpdateScenario);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("lost update"), std::string::npos) << r.failure;
  EXPECT_GT(r.schedules, 1u);  // the serial schedule passes first
  EXPECT_FALSE(r.trace.empty());
  EXPECT_FALSE(r.choices.empty());
}

TEST(SchedCheckExhaustive, MissesLostUpdateAtBoundZero) {
  // With zero preemptions only thread-granular serialisations exist, and
  // those never split a load from its store.
  Options opts;
  opts.mode = Mode::kExhaustive;
  opts.preemption_bound = 0;
  const Result r = Explore(opts, LostUpdateScenario);
  EXPECT_TRUE(r.ok) << r.failure;
  // Two threads, zero preemptions: the only freedom is who starts.
  EXPECT_EQ(r.schedules, 2u);
}

TEST(SchedCheckExhaustive, FetchAddIsAtomicUnderEveryInterleaving) {
  Options opts;
  opts.mode = Mode::kExhaustive;
  opts.preemption_bound = 3;
  const Result r = Explore(opts, [](sched::Test& t) {
    auto v = std::make_shared<InstrumentedAtomic<int>>(0);
    for (int i = 0; i < 2; ++i) {
      t.Spawn("inc" + std::to_string(i), [v] {
        v->fetch_add(1);
        v->fetch_add(1);
      });
    }
    t.AfterRun([v] { Check(v->load() == 4, "rmw increments lost"); });
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
  EXPECT_GT(r.schedules, 10u);
}

TEST(SchedCheckExhaustive, FailureIsDeterministicAcrossRuns) {
  Options opts;
  opts.mode = Mode::kExhaustive;
  opts.preemption_bound = 2;
  const Result a = Explore(opts, LostUpdateScenario);
  const Result b = Explore(opts, LostUpdateScenario);
  ASSERT_FALSE(a.ok);
  ASSERT_FALSE(b.ok);
  EXPECT_EQ(a.failing_index, b.failing_index);
  EXPECT_EQ(a.schedules, b.schedules);
  EXPECT_EQ(a.choices, b.choices);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(SchedCheckReplay, ChoicesReproduceTheExactFailure) {
  Options opts;
  opts.mode = Mode::kExhaustive;
  opts.preemption_bound = 1;
  const Result found = Explore(opts, LostUpdateScenario);
  ASSERT_FALSE(found.ok);

  Options replay;
  replay.replay = found.choices;
  const Result again = Explore(replay, LostUpdateScenario);
  ASSERT_FALSE(again.ok);
  EXPECT_EQ(again.schedules, 1u);
  EXPECT_EQ(again.failure, found.failure);
  EXPECT_EQ(again.trace, found.trace);
}

TEST(SchedCheckMutex, LockMakesTheIncrementAtomic) {
  Options opts;
  opts.mode = Mode::kExhaustive;
  opts.preemption_bound = 2;
  const Result r = Explore(opts, [](sched::Test& t) {
    struct State {
      TestMutex mu;
      InstrumentedAtomic<int> v{0};
    };
    auto s = std::make_shared<State>();
    for (int i = 0; i < 2; ++i) {
      t.Spawn("inc" + std::to_string(i), [s] {
        s->mu.lock();
        s->v.store(s->v.load() + 1);
        s->mu.unlock();
      });
    }
    t.AfterRun([s] { Check(s->v.load() == 2, "mutex failed to exclude"); });
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
}

TEST(SchedCheckMutex, TryLockFailsWhileHeldAndSucceedsWhenFree) {
  Options opts;
  opts.mode = Mode::kExhaustive;
  opts.preemption_bound = 2;
  const Result r = Explore(opts, [](sched::Test& t) {
    struct State {
      TestMutex mu;
      InstrumentedAtomic<int> failures{0};
      InstrumentedAtomic<int> successes{0};
    };
    auto s = std::make_shared<State>();
    t.Spawn("holder", [s] {
      s->mu.lock();
      Yield("critical");
      s->mu.unlock();
    });
    t.Spawn("prober", [s] {
      if (s->mu.try_lock()) {
        s->successes.fetch_add(1);
        s->mu.unlock();
      } else {
        s->failures.fetch_add(1);
      }
    });
    t.AfterRun([s] {
      Check(s->successes.load() + s->failures.load() == 1,
            "try_lock must either succeed or fail exactly once");
    });
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
}

TEST(SchedCheckDeadlock, AbbaOrderIsFoundAndTraced) {
  Options opts;
  opts.mode = Mode::kExhaustive;
  opts.preemption_bound = 1;
  const Result r = Explore(opts, [](sched::Test& t) {
    struct State {
      TestMutex a, b;
    };
    auto s = std::make_shared<State>();
    t.Spawn("ab", [s] {
      s->a.lock();
      s->b.lock();
      s->b.unlock();
      s->a.unlock();
    });
    t.Spawn("ba", [s] {
      s->b.lock();
      s->a.lock();
      s->a.unlock();
      s->b.unlock();
    });
  });
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("deadlock"), std::string::npos) << r.failure;
  EXPECT_FALSE(r.trace.empty());
}

// The faithful condvar-wait protocol (what the PD2GL_SCHEDCHECK CondVar
// shim expands to): register before releasing, re-check the predicate.
void GoodCondScenario(Test& t) {
  struct State {
    TestMutex mu;
    int done = 0;  // guarded by mu (serialised model: benign)
    int cv = 0;    // address used as the condvar identity
  };
  auto s = std::make_shared<State>();
  t.Spawn("waiter", [s] {
    s->mu.lock();
    while (s->done == 0) {
      CondPrepareWait(&s->cv, "cv");
      s->mu.unlock();
      CondCommitWait(&s->cv);
      s->mu.lock();
    }
    s->mu.unlock();
  });
  t.Spawn("signaler", [s] {
    s->mu.lock();
    s->done = 1;
    CondNotify(&s->cv, "cv");
    s->mu.unlock();
  });
}

TEST(SchedCheckCondVar, AtomicReleaseAndWaitNeverLosesTheWakeup) {
  Options opts;
  opts.mode = Mode::kExhaustive;
  opts.preemption_bound = 2;
  const Result r = Explore(opts, GoodCondScenario);
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
}

TEST(SchedCheckCondVar, ForgottenNotifySurfacesAsDeadlock) {
  Options opts;
  opts.mode = Mode::kExhaustive;
  opts.preemption_bound = 2;
  const Result r = Explore(opts, [](sched::Test& t) {
    struct State {
      TestMutex mu;
      int done = 0;
      int cv = 0;
    };
    auto s = std::make_shared<State>();
    t.Spawn("waiter", [s] {
      s->mu.lock();
      while (s->done == 0) {
        CondPrepareWait(&s->cv, "cv");
        s->mu.unlock();
        CondCommitWait(&s->cv);
        s->mu.lock();
      }
      s->mu.unlock();
    });
    t.Spawn("signaler", [s] {
      s->mu.lock();
      s->done = 1;  // bug: predicate set but no notify
      s->mu.unlock();
    });
  });
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("deadlock"), std::string::npos) << r.failure;
}

void NonAtomicRaceScenario(Test& t) {
  auto cell = std::make_shared<NonAtomic<int>>(0);
  t.Spawn("writer", [cell] { cell->store(1); });
  t.Spawn("reader", [cell] { (void)cell->load(); });
}

TEST(SchedCheckRace, OverlappingPlainAccessesAreReported) {
  Options opts;
  opts.mode = Mode::kExhaustive;
  opts.preemption_bound = 1;
  const Result r = Explore(opts, NonAtomicRaceScenario);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("data race"), std::string::npos) << r.failure;
}

TEST(SchedCheckRace, LockedPlainAccessesAreNotReported) {
  Options opts;
  opts.mode = Mode::kExhaustive;
  opts.preemption_bound = 2;
  const Result r = Explore(opts, [](sched::Test& t) {
    struct State {
      TestMutex mu;
      NonAtomic<int> cell{0};
    };
    auto s = std::make_shared<State>();
    t.Spawn("writer", [s] {
      s->mu.lock();
      s->cell.store(1);
      s->mu.unlock();
    });
    t.Spawn("reader", [s] {
      s->mu.lock();
      (void)s->cell.load();
      s->mu.unlock();
    });
  });
  EXPECT_TRUE(r.ok) << r.failure << "\n" << r.trace;
}

TEST(SchedCheckRandomWalk, FailureReplaysFromSeedAndIndex) {
  Options opts;
  opts.mode = Mode::kRandomWalk;
  opts.seed = 42;
  opts.max_schedules = 5000;
  const Result found = Explore(opts, NonAtomicRaceScenario);
  ASSERT_FALSE(found.ok) << "random walk should hit the race within 5000";

  Options replay;
  replay.mode = Mode::kRandomWalk;
  replay.seed = 42;
  replay.start_index = found.failing_index;
  replay.max_schedules = 1;
  const Result again = Explore(replay, NonAtomicRaceScenario);
  ASSERT_FALSE(again.ok);
  EXPECT_EQ(again.failing_index, found.failing_index);
  EXPECT_EQ(again.failure, found.failure);
  EXPECT_EQ(again.trace, found.trace);
  EXPECT_EQ(again.choices, found.choices);
}

TEST(SchedCheckPct, FindsTheLostUpdate) {
  Options opts;
  opts.mode = Mode::kPct;
  opts.seed = 7;
  opts.pct_depth = 3;
  opts.max_schedules = 2000;
  const Result r = Explore(opts, LostUpdateScenario);
  EXPECT_FALSE(r.ok) << "PCT should find a 1-deep ordering bug";
}

TEST(SchedCheckOptions, MaxSchedulesCapsExhaustiveEnumeration) {
  Options opts;
  opts.mode = Mode::kExhaustive;
  opts.preemption_bound = 0;  // bug needs 1, so enumeration stays clean
  opts.max_schedules = 1;
  const Result r = Explore(opts, LostUpdateScenario);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.schedules, 1u);
}

TEST(SchedCheckTrace, UsesSymbolicObjectIdsNotPointers) {
  Options opts;
  opts.mode = Mode::kExhaustive;
  opts.preemption_bound = 1;
  const Result r = Explore(opts, NonAtomicRaceScenario);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.trace.find("obj#"), std::string::npos) << r.trace;
  EXPECT_EQ(r.trace.find("0x"), std::string::npos)
      << "trace must not leak raw addresses:\n"
      << r.trace;
}

}  // namespace
}  // namespace platod2gl::sched
