// Hot-vertex sampling cache: distribution equivalence with the samtree
// descent, version-based invalidation under dynamic updates, admission
// gating and capacity bounds.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "concurrency/batch_updater.h"
#include "core/samtree.h"
#include "sampling/sample_cache.h"
#include "storage/graph_store.h"

namespace platod2gl {
namespace {

double ChiSquare(const std::vector<int>& hits,
                 const std::vector<double>& probs, int draws) {
  double chi = 0.0;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    const double expect = probs[i] * draws;
    if (expect < 1e-9) continue;
    const double d = hits[i] - expect;
    chi += d * d / expect;
  }
  return chi;
}

/// A GraphStore whose cache admits everything on the first miss, so tests
/// exercise the cached path directly.
GraphStoreConfig EagerCacheConfig() {
  GraphStoreConfig cfg;
  cfg.sample_cache.enabled = true;
  cfg.sample_cache.min_degree = 1;
  cfg.sample_cache.admit_after_misses = 1;
  return cfg;
}

// ---------------------------------------------------------------------------
// Samtree version counter (the invalidation primitive)
// ---------------------------------------------------------------------------

TEST(SamtreeVersionTest, EveryMutationAdvances) {
  Samtree tree;
  std::uint64_t last = tree.version();
  EXPECT_GT(last, 0u);  // stamps start at 1

  tree.Insert(7, 1.0);
  EXPECT_NE(tree.version(), last);
  last = tree.version();

  tree.Update(7, 2.0);
  EXPECT_NE(tree.version(), last);
  last = tree.version();

  tree.Remove(7);
  EXPECT_NE(tree.version(), last);
}

TEST(SamtreeVersionTest, StampsAreUniqueAcrossTrees) {
  // A fresh tree must never revalidate a cache entry built against a
  // predecessor at the same map slot, so stamps are process-unique.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 16; ++i) {
    Samtree tree;
    EXPECT_TRUE(seen.insert(tree.version()).second) << "stamp reused";
    tree.Insert(1, 1.0);
    EXPECT_TRUE(seen.insert(tree.version()).second) << "stamp reused";
  }
}

TEST(SamtreeVersionTest, MoveAssignAdoptsSourceStamp) {
  Samtree a, b;
  a.Insert(1, 1.0);
  const std::uint64_t a_version = a.version();
  const std::uint64_t b_version = b.version();
  b = std::move(a);
  EXPECT_EQ(b.version(), a_version);  // content identity travels with it
  EXPECT_NE(b.version(), b_version);
  EXPECT_NE(a.version(), a_version);  // moved-from shell re-stamped
}

// ---------------------------------------------------------------------------
// Distribution equivalence (satellite 3a)
// ---------------------------------------------------------------------------

TEST(SampleCacheDistributionTest, CachedWeightedMatchesFts) {
  GraphStore g(EagerCacheConfig());
  Xoshiro256 rng(11);
  const std::size_t n = 150;
  std::vector<Weight> weights;
  for (VertexId d = 0; d < n; ++d) {
    const Weight w = 0.05 + rng.NextDouble();
    weights.push_back(w);
    g.AddEdge({1, 1000 + d, w, 0});
  }
  Weight total = 0.0;
  for (Weight w : weights) total += w;
  std::vector<double> probs;
  for (Weight w : weights) probs.push_back(w / total);

  const int draws = 300000;
  std::vector<int> hits(n, 0);
  std::vector<VertexId> out;
  for (int i = 0; i < draws; i += 50) {
    out.clear();
    ASSERT_TRUE(g.SampleNeighbors(1, 50, /*weighted=*/true, rng, &out, 0));
    for (VertexId v : out) ++hits[v - 1000];
  }

  // The draws must have come from the cached alias table, not the descent.
  ASSERT_NE(g.sample_cache(), nullptr);
  EXPECT_GT(g.sample_cache()->Stats().hits, 0u);
  // 149 dof: 99.9th percentile ~ 210; slack as in the FTS suite.
  EXPECT_LT(ChiSquare(hits, probs, draws), 230.0);
}

TEST(SampleCacheDistributionTest, CachedUniformIsUniform) {
  GraphStore g(EagerCacheConfig());
  Xoshiro256 rng(22);
  const std::size_t n = 128;
  for (VertexId d = 0; d < n; ++d) {
    g.AddEdge({1, 1000 + d, 0.05 + rng.NextDouble(), 0});  // weights ignored
  }
  const int draws = 256000;
  std::vector<int> hits(n, 0);
  std::vector<VertexId> out;
  for (int i = 0; i < draws; i += 64) {
    out.clear();
    ASSERT_TRUE(g.SampleNeighbors(1, 64, /*weighted=*/false, rng, &out, 0));
    for (VertexId v : out) ++hits[v - 1000];
  }
  EXPECT_GT(g.sample_cache()->Stats().hits, 0u);
  const std::vector<double> probs(n, 1.0 / static_cast<double>(n));
  // 127 dof: 99.9th percentile ~ 186.
  EXPECT_LT(ChiSquare(hits, probs, draws), 200.0);
}

// ---------------------------------------------------------------------------
// Invalidation under dynamic updates (satellite 3b)
// ---------------------------------------------------------------------------

TEST(SampleCacheInvalidationTest, InterleavedBatchUpdatesNeverServeStale) {
  GraphStore g(EagerCacheConfig());
  ThreadPool pool(4);
  BatchUpdater updater(&g.topology(0), &pool);
  Xoshiro256 rng(33);

  // Reference neighbourhood of the hot vertex, mirrored by hand.
  const VertexId hot = 1;
  std::set<VertexId> live;
  std::vector<EdgeUpdate> batch;
  for (VertexId d = 0; d < 200; ++d) {
    batch.push_back({UpdateKind::kInsert, {hot, 10000 + d, 1.0, 0}});
    live.insert(10000 + d);
  }
  updater.ApplyBatch(batch);

  std::vector<VertexId> out;
  VertexId next_fresh = 20000;
  for (int round = 0; round < 60; ++round) {
    // Warm / re-warm the cache on the current neighbourhood.
    out.clear();
    ASSERT_TRUE(g.SampleNeighbors(hot, 100, /*weighted=*/true, rng, &out, 0));
    for (VertexId v : out) {
      ASSERT_TRUE(live.count(v)) << "stale neighbour " << v << " drawn";
    }

    // Delete a handful of live neighbours and insert fresh ones through
    // the latch-free batch path (which mutates samtrees directly).
    batch.clear();
    for (int i = 0; i < 5 && live.size() > 50; ++i) {
      const VertexId victim = *live.begin();
      batch.push_back({UpdateKind::kDelete, {hot, victim, 0.0, 0}});
      live.erase(live.begin());
    }
    for (int i = 0; i < 3; ++i) {
      batch.push_back({UpdateKind::kInsert, {hot, next_fresh, 1.0, 0}});
      live.insert(next_fresh++);
    }
    updater.ApplyBatch(batch);

    // Every draw after the batch must reflect it: deleted neighbours may
    // never reappear, whatever mix of cached / descent paths serves it.
    for (int rep = 0; rep < 4; ++rep) {
      out.clear();
      ASSERT_TRUE(
          g.SampleNeighbors(hot, 50, /*weighted=*/true, rng, &out, 0));
      for (VertexId v : out) {
        ASSERT_TRUE(live.count(v)) << "stale neighbour " << v
                                   << " drawn after delete, round " << round;
      }
    }
  }

  // The interleaving must actually have exercised the invalidation path.
  const SampleCacheStats stats = g.sample_cache()->Stats();
  EXPECT_GT(stats.stale_hits, 0u);
  EXPECT_GT(stats.rebuilds, 0u);
  EXPECT_GT(stats.hits, 0u);
}

TEST(SampleCacheInvalidationTest, RemoveSourceDropsCachedNeighborhood) {
  GraphStore g(EagerCacheConfig());
  Xoshiro256 rng(44);
  for (VertexId d = 0; d < 64; ++d) g.AddEdge({1, 100 + d, 1.0, 0});

  std::vector<VertexId> out;
  ASSERT_TRUE(g.SampleNeighbors(1, 32, true, rng, &out, 0));  // warms cache
  ASSERT_TRUE(g.SampleNeighbors(1, 32, true, rng, &out, 0));

  // Drop the source entirely, then rebuild it with a disjoint
  // neighbourhood: the fresh samtree's unique stamp must invalidate the
  // old entry even though the vertex ID (and possibly the heap slot) is
  // reused.
  ASSERT_EQ(g.topology(0).RemoveSource(1), 64u);
  for (VertexId d = 0; d < 64; ++d) g.AddEdge({1, 900 + d, 1.0, 0});

  for (int rep = 0; rep < 8; ++rep) {
    out.clear();
    ASSERT_TRUE(g.SampleNeighbors(1, 32, true, rng, &out, 0));
    for (VertexId v : out) {
      ASSERT_GE(v, 900u) << "neighbour from the removed source drawn";
    }
  }
}

// ---------------------------------------------------------------------------
// Admission and capacity
// ---------------------------------------------------------------------------

TEST(SampleCacheAdmissionTest, ColdVerticesStayOnTheDescent) {
  GraphStoreConfig cfg;
  cfg.sample_cache.min_degree = 100;  // every vertex below the gate
  cfg.sample_cache.admit_after_misses = 1;
  GraphStore g(cfg);
  Xoshiro256 rng(55);
  for (VertexId s = 1; s <= 20; ++s) {
    for (VertexId d = 0; d < 5; ++d) g.AddEdge({s, s * 100 + d, 1.0, 0});
  }
  std::vector<VertexId> out;
  for (int rep = 0; rep < 50; ++rep) {
    for (VertexId s = 1; s <= 20; ++s) {
      out.clear();
      ASSERT_TRUE(g.SampleNeighbors(s, 10, true, rng, &out, 0));
      EXPECT_EQ(out.size(), 10u);
    }
  }
  const SampleCacheStats stats = g.sample_cache()->Stats();
  EXPECT_EQ(g.sample_cache()->size(), 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_GT(stats.cold_rejects, 0u);
}

TEST(SampleCacheAdmissionTest, TrafficGateDelaysAdmission) {
  GraphStoreConfig cfg;
  cfg.sample_cache.min_degree = 1;
  cfg.sample_cache.admit_after_misses = 3;
  GraphStore g(cfg);
  Xoshiro256 rng(66);
  for (VertexId d = 0; d < 32; ++d) g.AddEdge({1, 100 + d, 1.0, 0});

  std::vector<VertexId> out;
  g.SampleNeighbors(1, 8, true, rng, &out, 0);  // miss 1
  g.SampleNeighbors(1, 8, true, rng, &out, 0);  // miss 2
  EXPECT_EQ(g.sample_cache()->size(), 0u);
  g.SampleNeighbors(1, 8, true, rng, &out, 0);  // miss 3: admitted
  EXPECT_EQ(g.sample_cache()->size(), 1u);
  EXPECT_EQ(g.sample_cache()->Stats().admissions, 1u);
}

TEST(SampleCacheAdmissionTest, CapacityBoundHoldsUnderPressure) {
  SampleCacheConfig cfg;
  cfg.capacity = 8;
  cfg.num_shards = 1;
  cfg.min_degree = 1;
  cfg.admit_after_misses = 1;
  SampleCache cache(cfg);
  Xoshiro256 rng(77);

  std::vector<Samtree> trees(50);
  for (std::size_t i = 0; i < trees.size(); ++i) {
    for (VertexId d = 0; d < 16; ++d) {
      trees[i].Insert(1000 * i + d, 1.0);
    }
  }
  std::vector<VertexId> out;
  for (int rep = 0; rep < 4; ++rep) {
    for (std::size_t i = 0; i < trees.size(); ++i) {
      out.clear();
      cache.Sample(i, 0, trees[i], true, 4, rng, &out);
    }
  }
  EXPECT_LE(cache.size(), 8u);
  EXPECT_GT(cache.Stats().evictions, 0u);
  EXPECT_GT(cache.MemoryUsage(), 0u);
}

TEST(SampleCacheAdmissionTest, DisabledCacheFallsBackEverywhere) {
  GraphStoreConfig cfg;
  cfg.sample_cache.enabled = false;
  GraphStore g(cfg);
  EXPECT_EQ(g.sample_cache(), nullptr);
  Xoshiro256 rng(88);
  for (VertexId d = 0; d < 300; ++d) g.AddEdge({1, 100 + d, 1.0, 0});
  std::vector<VertexId> out;
  ASSERT_TRUE(g.SampleNeighbors(1, 20, true, rng, &out, 0));
  EXPECT_EQ(out.size(), 20u);
}

TEST(SampleCacheAdmissionTest, RelationsDoNotAlias) {
  GraphStoreConfig cfg = EagerCacheConfig();
  cfg.num_relations = 2;
  GraphStore g(cfg);
  Xoshiro256 rng(99);
  for (VertexId d = 0; d < 32; ++d) {
    g.AddEdge({1, 100 + d, 1.0, 0});
    g.AddEdge({1, 500 + d, 1.0, 1});
  }
  std::vector<VertexId> out;
  for (int rep = 0; rep < 8; ++rep) {
    out.clear();
    ASSERT_TRUE(g.SampleNeighbors(1, 16, true, rng, &out, 0));
    for (VertexId v : out) EXPECT_LT(v, 500u);
    out.clear();
    ASSERT_TRUE(g.SampleNeighbors(1, 16, true, rng, &out, 1));
    for (VertexId v : out) EXPECT_GE(v, 500u);
  }
}

}  // namespace
}  // namespace platod2gl
