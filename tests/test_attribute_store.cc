// AttributeStore tests (paper Section III, attribute KV storage).
#include "storage/attribute_store.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace platod2gl {
namespace {

TEST(AttributeStoreTest, SetAndGetFeatures) {
  AttributeStore store;
  store.SetFeatures(1, {1.0f, 2.0f, 3.0f});
  const std::vector<float>* f = store.GetFeatures(1);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(*f, (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(store.GetFeatures(2), nullptr);
}

TEST(AttributeStoreTest, OverwriteFeatures) {
  AttributeStore store;
  store.SetFeatures(1, {1.0f});
  store.SetFeatures(1, {9.0f, 8.0f});
  EXPECT_EQ(*store.GetFeatures(1), (std::vector<float>{9.0f, 8.0f}));
  EXPECT_EQ(store.NumVertices(), 1u);
}

TEST(AttributeStoreTest, Labels) {
  AttributeStore store;
  EXPECT_FALSE(store.GetLabel(3).has_value());
  store.SetLabel(3, 7);
  EXPECT_EQ(store.GetLabel(3), std::optional<std::int64_t>(7));
  // Label and features coexist on the same vertex.
  store.SetFeatures(3, {0.5f});
  EXPECT_EQ(store.GetLabel(3), std::optional<std::int64_t>(7));
  ASSERT_NE(store.GetFeatures(3), nullptr);
}

TEST(AttributeStoreTest, GatherFeaturesDense) {
  AttributeStore store;
  store.SetFeatures(10, {1.0f, 2.0f});
  store.SetFeatures(20, {3.0f, 4.0f});
  std::vector<float> out;
  store.GatherFeatures({10, 99, 20}, 2, &out);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0], 1.0f);
  EXPECT_EQ(out[1], 2.0f);
  EXPECT_EQ(out[2], 0.0f);  // missing vertex -> zero row
  EXPECT_EQ(out[3], 0.0f);
  EXPECT_EQ(out[4], 3.0f);
  EXPECT_EQ(out[5], 4.0f);
}

TEST(AttributeStoreTest, GatherTruncatesAndPads) {
  AttributeStore store;
  store.SetFeatures(1, {1.0f, 2.0f, 3.0f});  // wider than requested dim
  store.SetFeatures(2, {5.0f});              // narrower than requested dim
  std::vector<float> out;
  store.GatherFeatures({1, 2}, 2, &out);
  EXPECT_EQ(out, (std::vector<float>{1.0f, 2.0f, 5.0f, 0.0f}));
}

TEST(AttributeStoreTest, ConcurrentWriters) {
  AttributeStore store;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&store, t] {
      for (VertexId v = 0; v < 500; ++v) {
        store.SetFeatures(static_cast<VertexId>(t) * 1000 + v,
                          {static_cast<float>(t)});
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.NumVertices(), 8 * 500u);
}

TEST(AttributeStoreTest, MemoryTracksContent) {
  AttributeStore store;
  const std::size_t before = store.MemoryUsage();
  for (VertexId v = 0; v < 100; ++v) {
    store.SetFeatures(v + 1, std::vector<float>(64, 1.0f));
  }
  EXPECT_GT(store.MemoryUsage(), before + 100 * 64 * sizeof(float));
}

}  // namespace
}  // namespace platod2gl
