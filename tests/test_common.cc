// Tests for the common utilities: RNG, Status/Result, memory helpers,
// spinlock and thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/memory.h"
#include "common/random.h"
#include "common/spinlock.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/types.h"

namespace platod2gl {
namespace {

TEST(RandomTest, DeterministicForFixedSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 3);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, NextUint64RespectsBound) {
  Xoshiro256 rng(8);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextUint64(bound), bound);
    }
  }
}

TEST(RandomTest, NextUint64RoughlyUniform) {
  Xoshiro256 rng(9);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 100000; ++i) ++hits[rng.NextUint64(10)];
  for (int h : hits) EXPECT_NEAR(h, 10000, 600);
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status s = Status::NotFound("missing vertex");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing vertex");
  EXPECT_EQ(Status::Ok().ToString(), "OK");
}

TEST(StatusTest, ResultHoldsValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> bad(Status::OutOfRange());
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(MemoryTest, HumanBytesFormatting) {
  EXPECT_EQ(HumanBytes(0), "0.00 B");
  EXPECT_EQ(HumanBytes(1024), "1.00 KB");
  EXPECT_EQ(HumanBytes(static_cast<std::size_t>(1.5 * 1024 * 1024)),
            "1.50 MB");
}

TEST(MemoryTest, VectorBytesUsesCapacity) {
  std::vector<std::uint64_t> v;
  v.reserve(100);
  EXPECT_EQ(VectorBytes(v), 100 * sizeof(std::uint64_t));
}

TEST(MemoryTest, BreakdownTotals) {
  MemoryBreakdown m;
  m.topology_bytes = 1;
  m.index_bytes = 2;
  m.key_bytes = 3;
  m.other_bytes = 4;
  EXPECT_EQ(m.Total(), 10u);
}

TEST(SpinlockTest, MutualExclusion) {
  Spinlock mu;  // pd2gl-lint: allow-unguarded-mutex (the lock under test)
  std::int64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        mu.lock();
        ++counter;
        mu.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 40000);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingle) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL(); });
  std::atomic<int> n{0};
  pool.ParallelFor(1, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPoolTest, ParallelForBlockedCoversRange) {
  ThreadPool pool(3);
  for (std::size_t grain : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                            std::size_t{64}, std::size_t{5000}}) {
    std::vector<std::atomic<int>> hits(1000);
    pool.ParallelForBlocked(1000, grain,
                            [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1) << "grain " << grain;
  }
  pool.ParallelForBlocked(0, 8, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, WaitIsReentrant) {
  ThreadPool pool(2);
  pool.Wait();  // nothing submitted
  std::atomic<int> n{0};
  pool.Submit([&] { n.fetch_add(1); });
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(n.load(), 1);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = t.ElapsedMillis();
  EXPECT_GE(ms, 15.0);
  EXPECT_LT(ms, 5000.0);
  t.Reset();
  EXPECT_LT(t.ElapsedMillis(), 20.0);
}

TEST(TypesTest, EdgeEquality) {
  const Edge a{1, 2, 0.5, 0};
  EXPECT_EQ(a, (Edge{1, 2, 0.5, 0}));
  EXPECT_NE(a, (Edge{1, 3, 0.5, 0}));
}

}  // namespace
}  // namespace platod2gl
