// Batched / SIMD sampling hot path (docs/sampling_simd.md): the batched
// multi-draw descent and its SIMD kernels must be *bit-identical* to the
// scalar one-at-a-time paths under the same seed, across dispatch
// flavours, and statistically sound under interleaved mutations; the
// shard node arena must survive full build/mutate/destroy lifecycles
// cleanly (the suite runs under ASan/UBSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <numeric>
#include <vector>

#include "common/memory.h"
#include "common/random.h"
#include "common/simd.h"
#include "core/samtree.h"
#include "index/alias_table.h"
#include "index/fstable.h"

namespace platod2gl {
namespace {

// Restores the process-wide dispatch override even when an assertion
// fires mid-test.
class DispatchGuard {
 public:
  DispatchGuard() = default;
  ~DispatchGuard() { simd::SetAvx2EnabledForTest(simd::Avx2Supported()); }
};

std::vector<Weight> RandomWeights(Xoshiro256& rng, std::size_t n) {
  std::vector<Weight> w;
  w.reserve(n);
  for (std::size_t i = 0; i < n; ++i) w.push_back(0.05 + rng.NextDouble());
  return w;
}

Samtree BuildTree(std::size_t n, std::uint32_t capacity, std::uint64_t seed,
                  NodeArena* arena = nullptr) {
  Samtree tree(SamtreeConfig{.node_capacity = capacity, .alpha = 0,
                             .compress_ids = true, .arena = arena});
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    tree.Insert(static_cast<VertexId>(i * 7 + 3), 0.05 + rng.NextDouble());
  }
  return tree;
}

// --- SIMD kernels: scalar and AVX2 flavours must agree bit-for-bit ----

TEST(SimdKernels, FindFirstGreaterMatchesScalar) {
  if (!simd::Avx2Supported()) GTEST_SKIP() << "no AVX2 on this host";
  DispatchGuard guard;
  Xoshiro256 rng(42);
  for (std::size_t n : {0u, 1u, 3u, 4u, 5u, 7u, 8u, 17u, 64u, 255u}) {
    std::vector<Weight> a = RandomWeights(rng, n);
    std::sort(a.begin(), a.end());
    // Probe below, between, at, and above every element boundary — the
    // `at` probes pin the strict-> (upper_bound) semantics on ties.
    std::vector<Weight> probes{-1.0, 1e9};
    for (Weight x : a) {
      probes.push_back(x);
      probes.push_back(x - 1e-12);
      probes.push_back(x + 1e-12);
    }
    for (std::size_t start = 0; start <= n; ++start) {
      for (Weight r : probes) {
        const Weight* first = a.data() + start;
        const Weight* last = a.data() + n;
        const std::size_t expect = static_cast<std::size_t>(
            std::upper_bound(first, last, r) - a.data());
        simd::SetAvx2EnabledForTest(false);
        const std::size_t s = simd::FindFirstGreater(a.data(), n, start, r);
        simd::SetAvx2EnabledForTest(true);
        const std::size_t v = simd::FindFirstGreater(a.data(), n, start, r);
        ASSERT_EQ(expect, s) << "n=" << n << " start=" << start << " r=" << r;
        ASSERT_EQ(s, v) << "n=" << n << " start=" << start << " r=" << r;
      }
    }
  }
}

TEST(SimdKernels, AddToRangeMatchesScalarBitwise) {
  if (!simd::Avx2Supported()) GTEST_SKIP() << "no AVX2 on this host";
  DispatchGuard guard;
  Xoshiro256 rng(43);
  for (std::size_t n : {1u, 2u, 4u, 5u, 9u, 33u, 128u}) {
    const std::vector<Weight> base = RandomWeights(rng, n);
    for (std::size_t begin = 0; begin <= n; ++begin) {
      for (std::size_t end = begin; end <= n; ++end) {
        const Weight delta = rng.NextDouble() - 0.5;
        std::vector<Weight> s = base, v = base;
        simd::SetAvx2EnabledForTest(false);
        simd::AddToRange(s.data(), begin, end, delta);
        simd::SetAvx2EnabledForTest(true);
        simd::AddToRange(v.data(), begin, end, delta);
        for (std::size_t i = 0; i < n; ++i) {
          // Bit-level equality, not EXPECT_DOUBLE_EQ: the contract is
          // identical IEEE operations, not merely close results.
          ASSERT_EQ(std::memcmp(&s[i], &v[i], sizeof(Weight)), 0)
              << "i=" << i << " [" << begin << "," << end << ") n=" << n;
        }
      }
    }
  }
}

// --- FSTable batched Fenwick descent -----------------------------------

TEST(FSTableBatched, FindIndicesMatchesPerDrawFindIndex) {
  DispatchGuard guard;
  Xoshiro256 rng(7);
  for (std::size_t n : {1u, 2u, 3u, 8u, 31u, 32u, 33u, 200u}) {
    const std::vector<Weight> w = RandomWeights(rng, n);
    FSTable fs(w);
    const Weight total = fs.TotalWeight();
    for (std::size_t m : {1u, 4u, 17u, 128u}) {
      std::vector<Weight> rs;
      rs.reserve(m);
      for (std::size_t d = 0; d < m; ++d) {
        rs.push_back(rng.NextDouble() * total);
      }
      std::vector<std::size_t> expect;
      expect.reserve(m);
      for (Weight r : rs) expect.push_back(fs.FindIndex(r));
      for (bool avx2 : {false, true}) {
        if (avx2 && !simd::Avx2Supported()) continue;
        simd::SetAvx2EnabledForTest(avx2);
        std::vector<std::uint32_t> got(m);
        fs.FindIndices(rs.data(), got.data(), m);
        for (std::size_t d = 0; d < m; ++d) {
          ASSERT_EQ(expect[d], got[d])
              << "n=" << n << " m=" << m << " d=" << d << " avx2=" << avx2;
        }
      }
    }
  }
}

TEST(FSTableBatched, FenwickFindIndicesAcrossDistinctTables) {
  // The samtree batch hands the kernel a different leaf view per draw;
  // exercise mixed-size lanes (including mid >= n masked gathers).
  DispatchGuard guard;
  Xoshiro256 rng(17);
  std::vector<FSTable> tables;
  for (std::size_t n : {1u, 2u, 5u, 8u, 13u, 64u, 100u, 257u}) {
    tables.emplace_back(RandomWeights(rng, n));
  }
  const std::size_t m = 97;
  std::vector<FenwickView> views(m);
  std::vector<Weight> rs(m);
  std::vector<std::size_t> expect(m);
  for (std::size_t d = 0; d < m; ++d) {
    const FSTable& fs = tables[rng.NextUint64(tables.size())];
    views[d] = fs.View();
    rs[d] = rng.NextDouble() * fs.TotalWeight();
    expect[d] = fs.FindIndex(rs[d]);
  }
  for (bool avx2 : {false, true}) {
    if (avx2 && !simd::Avx2Supported()) continue;
    simd::SetAvx2EnabledForTest(avx2);
    std::vector<std::uint32_t> got(m);
    FenwickFindIndices(views.data(), rs.data(), got.data(), m);
    for (std::size_t d = 0; d < m; ++d) {
      ASSERT_EQ(expect[d], got[d]) << "d=" << d << " avx2=" << avx2;
    }
  }
}

// --- Samtree batch vs one-at-a-time: bit-exact, all dispatch flavours --

class BatchExactnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchExactnessTest, WeightedBatchBitIdenticalToSingleDraws) {
  const std::uint64_t seed = GetParam();
  for (std::size_t n : {1u, 5u, 40u, 300u, 2000u}) {
    for (std::uint32_t cap : {4u, 8u, 64u}) {
      const Samtree tree = BuildTree(n, cap, seed);
      for (std::size_t k : {1u, 2u, 4u, 16u, 50u, 200u}) {
        std::vector<VertexId> singles;
        Xoshiro256 rng_single(seed ^ k);
        for (std::size_t i = 0; i < k; ++i) {
          singles.push_back(tree.SampleWeighted(rng_single));
        }
        std::vector<VertexId> batch;
        Xoshiro256 rng_batch(seed ^ k);
        tree.SampleWeightedBatch(k, rng_batch, &batch);
        ASSERT_EQ(singles, batch) << "n=" << n << " cap=" << cap
                                  << " k=" << k;
        // Identical RNG consumption: both streams must now be in the
        // same state.
        ASSERT_EQ(rng_single.Next(), rng_batch.Next());

        // The k-ary convenience overload delegates to the batch and must
        // produce the same output again.
        std::vector<VertexId> karg;
        Xoshiro256 rng_karg(seed ^ k);
        tree.SampleWeighted(k, rng_karg, &karg);
        ASSERT_EQ(singles, karg);
      }
    }
  }
}

TEST_P(BatchExactnessTest, UniformBatchBitIdenticalToSingleDraws) {
  const std::uint64_t seed = GetParam() ^ 0xA5A5;
  for (std::size_t n : {1u, 7u, 129u, 1500u}) {
    const Samtree tree = BuildTree(n, 8, seed);
    for (std::size_t k : {1u, 3u, 16u, 100u}) {
      std::vector<VertexId> singles;
      Xoshiro256 rng_single(seed + k);
      for (std::size_t i = 0; i < k; ++i) {
        singles.push_back(tree.SampleUniform(rng_single));
      }
      std::vector<VertexId> batch;
      Xoshiro256 rng_batch(seed + k);
      tree.SampleUniformBatch(k, rng_batch, &batch);
      ASSERT_EQ(singles, batch) << "n=" << n << " k=" << k;
      ASSERT_EQ(rng_single.Next(), rng_batch.Next());
    }
  }
}

TEST_P(BatchExactnessTest, ScalarAndSimdDispatchProduceIdenticalSamples) {
  if (!simd::Avx2Supported()) GTEST_SKIP() << "no AVX2 on this host";
  DispatchGuard guard;
  const std::uint64_t seed = GetParam() ^ 0xD15;
  const Samtree tree = BuildTree(1200, 8, seed);
  for (std::size_t k : {4u, 16u, 50u, 256u}) {
    std::vector<VertexId> scalar_out, simd_out;
    Xoshiro256 rng_s(seed + k), rng_v(seed + k);
    simd::SetAvx2EnabledForTest(false);
    tree.SampleWeightedBatch(k, rng_s, &scalar_out);
    simd::SetAvx2EnabledForTest(true);
    tree.SampleWeightedBatch(k, rng_v, &simd_out);
    ASSERT_EQ(scalar_out, simd_out) << "k=" << k;
    ASSERT_EQ(rng_s.Next(), rng_v.Next());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchExactnessTest,
                         ::testing::Values(11, 222, 3333));

// --- Distribution of the batched path under interleaved updates --------

double ChiSquare(const std::map<VertexId, int>& hits,
                 const std::map<VertexId, Weight>& weights, int draws) {
  const double total = std::accumulate(
      weights.begin(), weights.end(), 0.0,
      [](double acc, const auto& kv) { return acc + kv.second; });
  double chi = 0.0;
  for (const auto& [v, w] : weights) {
    const double expect = draws * w / total;
    if (expect < 1e-9) continue;
    const auto it = hits.find(v);
    const double observed = it == hits.end() ? 0.0 : it->second;
    const double d = observed - expect;
    chi += d * d / expect;
  }
  return chi;
}

TEST(BatchDistribution, WeightedBatchUnbiasedUnderInterleavedUpdates) {
  Xoshiro256 rng(1234);
  Samtree tree(SamtreeConfig{.node_capacity = 8});
  std::map<VertexId, Weight> weights;
  for (VertexId v = 0; v < 150; ++v) {
    const Weight w = 0.05 + rng.NextDouble();
    tree.Insert(v, w);
    weights[v] = w;
  }

  // Three epochs: mutate (inserts + weight updates + removals), then draw
  // batches against the *current* weights. Every epoch must pass its own
  // chi-square — the batched descent may not smear stale structure across
  // mutations.
  VertexId next_id = 150;
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (int m = 0; m < 60; ++m) {
      const double r = rng.NextDouble();
      if (r < 0.4) {
        const Weight w = 0.05 + rng.NextDouble();
        tree.Insert(next_id, w);
        weights[next_id] = w;
        ++next_id;
      } else if (r < 0.75) {
        auto it = weights.begin();
        std::advance(it, rng.NextUint64(weights.size()));
        const Weight w = 0.05 + rng.NextDouble();
        tree.Update(it->first, w);
        it->second = w;
      } else if (weights.size() > 16) {
        auto it = weights.begin();
        std::advance(it, rng.NextUint64(weights.size()));
        ASSERT_TRUE(tree.Remove(it->first));
        weights.erase(it);
      }
    }
    ASSERT_EQ(tree.size(), weights.size());

    std::map<VertexId, int> hits;
    const int batches = 2500;
    const std::size_t k = 64;
    std::vector<VertexId> out;
    for (int b = 0; b < batches; ++b) {
      out.clear();
      tree.SampleWeightedBatch(k, rng, &out);
      for (VertexId v : out) ++hits[v];
    }
    const int draws = batches * static_cast<int>(k);
    // dof ~ |weights| - 1; 99.9th percentile of chi2(200) is ~ 270 —
    // scale the slack with the support size since it drifts per epoch.
    const double bound = static_cast<double>(weights.size()) * 1.8 + 60.0;
    EXPECT_LT(ChiSquare(hits, weights, draws), bound)
        << "epoch " << epoch << ", support " << weights.size();
  }
}

// --- AliasTable batch (SampleCache hit path) ----------------------------

TEST(AliasTableBatched, SampleBatchMatchesRepeatedSample) {
  Xoshiro256 wrng(55);
  for (std::size_t n : {1u, 2u, 17u, 500u}) {
    const AliasTable alias(RandomWeights(wrng, n));
    for (std::size_t k : {1u, 5u, 64u, 300u}) {
      std::vector<std::uint32_t> batch(k);
      Xoshiro256 r1(n * 1000 + k), r2(n * 1000 + k);
      alias.SampleBatch(k, r1, batch.data());
      for (std::size_t i = 0; i < k; ++i) {
        ASSERT_EQ(static_cast<std::uint32_t>(alias.Sample(r2)), batch[i]);
      }
      ASSERT_EQ(r1.Next(), r2.Next());
    }
  }
}

// --- Xoshiro jump streams (parallel sampler substreams) -----------------

TEST(XoshiroJump, JumpedStreamsAreDeterministicAndDistinct) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  b.Jump();
  // Deterministic: jumping an identical copy lands on the same stream.
  Xoshiro256 c(99);
  c.Jump();
  bool any_diff = false;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t xb = b.Next();
    ASSERT_EQ(xb, c.Next());
    if (xb != a.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "jump left the stream in place";
}

// --- NodeArena lifecycle (ASan/UBSan-clean by construction) -------------

TEST(NodeArenaLifecycle, BuildMutateSampleDestroyReleasesEverything) {
  NodeArena arena;
  EXPECT_EQ(arena.LiveBytes(), 0u);
  {
    Samtree tree = BuildTree(3000, 8, 77, &arena);
    EXPECT_GT(arena.LiveBytes(), 0u);
    EXPECT_GE(arena.MemoryUsage(), arena.LiveBytes());

    // Churn: removals force merges, re-inserts force splits — node
    // allocation and deallocation cycle through the free lists.
    Xoshiro256 rng(5);
    for (int round = 0; round < 3; ++round) {
      for (VertexId v = 0; v < 3000 * 7; v += 14) tree.Remove(v);
      for (VertexId v = 0; v < 3000 * 7; v += 14) {
        tree.Insert(v, 0.05 + rng.NextDouble());
      }
      std::vector<VertexId> out;
      tree.SampleWeightedBatch(128, rng, &out);
      EXPECT_EQ(out.size(), 128u);
    }
    std::string err;
    EXPECT_TRUE(tree.CheckInvariants(&err)) << err;
  }
  // Every node was arena-carved; destruction must return all of it.
  EXPECT_EQ(arena.LiveBytes(), 0u);
}

TEST(NodeArenaLifecycle, TreesMixHeapAndArenaNodesSafely) {
  NodeArena arena;
  // Heap-built tree adopted into an arena mid-life: old nodes stay heap,
  // new splits land in the arena, and the deleter must route each node
  // back to its true origin.
  Samtree tree = BuildTree(500, 8, 13);
  tree.SetArena(&arena);
  Xoshiro256 rng(17);
  for (VertexId v = 100000; v < 101500; ++v) {
    tree.Insert(v, 0.05 + rng.NextDouble());
  }
  EXPECT_GT(arena.LiveBytes(), 0u);
  std::string err;
  EXPECT_TRUE(tree.CheckInvariants(&err)) << err;

  std::vector<VertexId> singles, batch;
  Xoshiro256 r1(3), r2(3);
  for (int i = 0; i < 64; ++i) singles.push_back(tree.SampleWeighted(r1));
  tree.SampleWeightedBatch(64, r2, &batch);
  EXPECT_EQ(singles, batch);

  // Detach again: future allocations go back to the heap, existing arena
  // nodes still free correctly at destruction.
  tree.SetArena(nullptr);
  for (VertexId v = 200000; v < 200500; ++v) {
    tree.Insert(v, 0.05 + rng.NextDouble());
  }
  EXPECT_TRUE(tree.CheckInvariants(&err)) << err;
}

TEST(NodeArenaLifecycle, OversizedAndRecycledBlocks) {
  NodeArena arena(/*chunk_bytes=*/4096);
  // Oversized request gets its own chunk.
  void* big = arena.Allocate(64 * 1024);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.MemoryUsage(), 64u * 1024);
  arena.Deallocate(big, 64 * 1024);
  // Recycling: a freed block of the same size class is reused.
  void* a = arena.Allocate(48);
  arena.Deallocate(a, 48);
  void* b = arena.Allocate(48);
  EXPECT_EQ(a, b);
  arena.Deallocate(b, 48);
  EXPECT_EQ(arena.LiveBytes(), 0u);
}

}  // namespace
}  // namespace platod2gl
