// Negative tests for the invariant-checker layer: CheckInvariants /
// CheckConsistent must *fail* on deliberately corrupted structures, not
// just pass on healthy ones. Positive coverage of healthy trees lives in
// test_samtree_property.cc; this file proves the checker has teeth.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "concurrency/batch_updater.h"
#include "core/compressed_ids.h"
#include "core/samtree.h"
#include "index/cstable.h"
#include "index/fstable.h"
#include "common/lru_cache.h"
#include "storage/topology_store.h"

namespace platod2gl {
namespace {

Samtree BuildMultiLevelTree(std::size_t n, std::uint32_t node_capacity = 8) {
  SamtreeConfig config;
  config.node_capacity = node_capacity;
  Samtree tree(config);
  Xoshiro256 rng(42);
  for (std::size_t i = 0; i < n; ++i) {
    tree.Insert(1000 + i * 3, 0.5 + rng.NextDouble());
  }
  return tree;
}

TEST(FSTableConsistencyTest, HealthyTablePasses) {
  FSTable table({1.0, 2.0, 3.0, 4.0, 5.0});
  std::string err;
  EXPECT_TRUE(table.CheckConsistent(&err)) << err;
}

TEST(FSTableConsistencyTest, DetectsNegativeWeight) {
  FSTable table({1.0, 2.0, 3.0, 4.0, 5.0});
  table.CorruptRawEntryForTest(0, -5.0);
  std::string err;
  EXPECT_FALSE(table.CheckConsistent(&err));
  EXPECT_FALSE(err.empty());
}

TEST(FSTableConsistencyTest, DetectsNonFiniteEntry) {
  FSTable table({1.0, 2.0, 3.0});
  table.CorruptRawEntryForTest(1,
                               std::numeric_limits<Weight>::quiet_NaN());
  std::string err;
  EXPECT_FALSE(table.CheckConsistent(&err));

  FSTable table2({1.0, 2.0, 3.0});
  table2.CorruptRawEntryForTest(2,
                                std::numeric_limits<Weight>::infinity());
  EXPECT_FALSE(table2.CheckConsistent(&err));
}

TEST(CSTableConsistencyTest, HealthyTablePasses) {
  CSTable table({1.0, 2.0, 3.0});
  std::string err;
  EXPECT_TRUE(table.CheckConsistent(&err)) << err;
}

TEST(CSTableConsistencyTest, DetectsNonMonotonePrefix) {
  CSTable table({1.0, 2.0, 3.0});  // cumsum = {1, 3, 6}
  table.CorruptEntryForTest(1, 0.25);
  std::string err;
  EXPECT_FALSE(table.CheckConsistent(&err));
  EXPECT_FALSE(err.empty());
}

TEST(CSTableConsistencyTest, DetectsNonFinitePrefix) {
  CSTable table({1.0, 2.0, 3.0});
  table.CorruptEntryForTest(2, std::numeric_limits<Weight>::quiet_NaN());
  std::string err;
  EXPECT_FALSE(table.CheckConsistent(&err));
}

TEST(CompressedIdsConsistencyTest, AllPrefixWidthsPass) {
  // One group per allowed z: IDs differing only in the low 1 / 2 / 4 / 8
  // bytes land on z = 7 / 6 / 4 / 0 respectively.
  const std::vector<std::vector<VertexId>> groups = {
      {0x1122334455667700ULL, 0x1122334455667701ULL, 0x11223344556677FEULL},
      {0x1122334455660000ULL, 0x1122334455660100ULL, 0x112233445566FF01ULL},
      {0xAABBCCDD00000000ULL, 0xAABBCCDD01020304ULL, 0xAABBCCDDFFFFFFFFULL},
      {0x0000000000000001ULL, 0xFF00000000000001ULL, 0x0123456789ABCDEFULL},
  };
  const std::vector<std::uint8_t> expected_z = {7, 6, 4, 0};
  for (std::size_t g = 0; g < groups.size(); ++g) {
    CompressedIdList list;
    for (VertexId id : groups[g]) list.Append(id);
    EXPECT_EQ(list.prefix_bytes(), expected_z[g]) << "group " << g;
    std::string err;
    EXPECT_TRUE(list.CheckConsistent(&err)) << "group " << g << ": " << err;
  }
}

TEST(SamtreeInvariantTest, HealthyMultiLevelTreePasses) {
  Samtree tree = BuildMultiLevelTree(200);
  ASSERT_GE(tree.Height(), 3u);
  std::string err;
  EXPECT_TRUE(tree.CheckInvariants(&err)) << err;
}

TEST(SamtreeInvariantTest, CatchesCorruptedFSTable) {
  Samtree tree = BuildMultiLevelTree(200);
  ASSERT_TRUE(tree.CorruptForTest(TestCorruption::kFSTableEntry));
  std::string err;
  EXPECT_FALSE(tree.CheckInvariants(&err));
  EXPECT_FALSE(err.empty());
}

TEST(SamtreeInvariantTest, CatchesCorruptedCSTable) {
  Samtree tree = BuildMultiLevelTree(200);
  ASSERT_TRUE(tree.CorruptForTest(TestCorruption::kCSTableEntry));
  std::string err;
  EXPECT_FALSE(tree.CheckInvariants(&err));
  EXPECT_FALSE(err.empty());
}

TEST(SamtreeInvariantTest, CatchesCorruptedChildCount) {
  Samtree tree = BuildMultiLevelTree(200);
  ASSERT_TRUE(tree.CorruptForTest(TestCorruption::kChildCount));
  std::string err;
  EXPECT_FALSE(tree.CheckInvariants(&err));
  EXPECT_FALSE(err.empty());
}

TEST(SamtreeInvariantTest, CatchesBrokenRoutingOrder) {
  Samtree tree = BuildMultiLevelTree(200);
  ASSERT_TRUE(tree.CorruptForTest(TestCorruption::kMinId));
  std::string err;
  EXPECT_FALSE(tree.CheckInvariants(&err));
  EXPECT_FALSE(err.empty());
}

TEST(SamtreeInvariantTest, InternalCorruptionNeedsMultiLevelTree) {
  // A leaf-only root has no CSTable / counts / routing IDs to damage.
  Samtree tree = BuildMultiLevelTree(4, /*node_capacity=*/256);
  ASSERT_EQ(tree.Height(), 1u);
  EXPECT_FALSE(tree.CorruptForTest(TestCorruption::kCSTableEntry));
  EXPECT_FALSE(tree.CorruptForTest(TestCorruption::kChildCount));
  EXPECT_FALSE(tree.CorruptForTest(TestCorruption::kMinId));
  std::string err;
  EXPECT_TRUE(tree.CheckInvariants(&err)) << err;  // refusal left it intact
}

TEST(LruCacheInvariantTest, HealthyCachePasses) {
  LruCache<int, int> cache(4);
  std::string err;
  EXPECT_TRUE(cache.CheckInvariants(&err)) << err;  // empty
  for (int i = 0; i < 10; ++i) {
    cache.Put(i, i * i);
    EXPECT_TRUE(cache.CheckInvariants(&err)) << err;
  }
  EXPECT_EQ(cache.size(), 4u);  // capacity bound held via evictions
  cache.Get(7);
  cache.Clear();
  EXPECT_TRUE(cache.CheckInvariants(&err)) << err;
}

TEST(TopologyStoreInvariantTest, DetectsEdgeCounterDrift) {
  TopologyStore store;
  for (VertexId src = 0; src < 8; ++src) {
    for (VertexId dst = 0; dst < 16; ++dst) {
      store.AddEdge(src, 100 + dst, 1.0 + dst);
    }
  }
  std::string err;
  ASSERT_TRUE(store.CheckAllInvariants(&err)) << err;

  // A spurious counter bump — the signature of a mutation path that
  // forgot (or double-counted) the NoteEdgeInserted hook.
  store.NoteEdgeInserted();
  EXPECT_FALSE(store.CheckAllInvariants(&err));
  EXPECT_NE(err.find("drift"), std::string::npos) << err;
}

TEST(TopologyStoreInvariantTest, CleanAfterBatchUpdater) {
  TopologyStore store;
  ThreadPool pool(4);
  BatchUpdater updater(&store, &pool);
  Xoshiro256 rng(3);
  std::vector<EdgeUpdate> batch;
  for (int i = 0; i < 5000; ++i) {
    EdgeUpdate u;
    u.edge = Edge{rng.NextUint64(64), rng.NextUint64(512),
                  0.1 + rng.NextDouble(), 0};
    const double r = rng.NextDouble();
    u.kind = r < 0.6 ? UpdateKind::kInsert
                     : (r < 0.8 ? UpdateKind::kInPlaceUpdate
                                : UpdateKind::kDelete);
    batch.push_back(u);
  }
  updater.ApplyBatch(std::move(batch));
  std::string err;
  EXPECT_TRUE(store.CheckAllInvariants(&err)) << err;
}

}  // namespace
}  // namespace platod2gl
