// FSTable unit and property tests (paper Section V).
//
// Includes the paper's worked examples: Example 3 (FSTable over
// {0.3, 0.4, 0.1}), Figure 6 (6-element table), and Theorem 4 (sub-tree
// sum property at indices 2^k - 1).
#include "index/fstable.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace platod2gl {
namespace {

// --- paper examples --------------------------------------------------------

TEST(FSTableTest, PaperExample3RawEntries) {
  // A = {0.3, 0.4, 0.1}: F[0] = w0, F[1] = w0 + w1, F[2] = w2.
  FSTable f({0.3, 0.4, 0.1});
  EXPECT_NEAR(f.RawEntry(0), 0.3, 1e-12);
  EXPECT_NEAR(f.RawEntry(1), 0.7, 1e-12);
  EXPECT_NEAR(f.RawEntry(2), 0.1, 1e-12);
}

TEST(FSTableTest, PaperFigure6SubtreeSums) {
  // Figure 6: 6 weights; F[1] = w0 + w1, F[3] = sum of first four.
  const std::vector<Weight> w = {0.2, 0.5, 0.3, 0.1, 0.4, 0.6};
  FSTable f(w);
  EXPECT_NEAR(f.RawEntry(1), w[0] + w[1], 1e-12);
  EXPECT_NEAR(f.RawEntry(3), w[0] + w[1] + w[2] + w[3], 1e-12);
  EXPECT_NEAR(f.RawEntry(2), w[2], 1e-12);
  EXPECT_NEAR(f.RawEntry(4), w[4], 1e-12);
  EXPECT_NEAR(f.RawEntry(5), w[4] + w[5], 1e-12);
}

TEST(FSTableTest, Theorem4PowerOfTwoMinusOneIsPrefixSum) {
  std::vector<Weight> w;
  Xoshiro256 rng(3);
  for (int i = 0; i < 300; ++i) w.push_back(0.01 + rng.NextDouble());
  FSTable f(w);
  for (std::size_t k = 1; (1u << k) - 1 < w.size(); ++k) {
    const std::size_t idx = (1u << k) - 1;
    Weight expect = 0.0;
    for (std::size_t j = 0; j <= idx; ++j) expect += w[j];
    EXPECT_NEAR(f.RawEntry(idx), expect, 1e-9) << "k=" << k;
  }
}

// --- basic operations ------------------------------------------------------

TEST(FSTableTest, PrefixMatchesBruteForce) {
  const std::vector<Weight> w = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  FSTable f(w);
  Weight run = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    run += w[i];
    EXPECT_NEAR(f.Prefix(i), run, 1e-9);
  }
  EXPECT_NEAR(f.TotalWeight(), 45.0, 1e-9);
}

TEST(FSTableTest, WeightAtRecoversRawWeights) {
  const std::vector<Weight> w = {0.5, 0.2, 1.3, 0.7, 2.2};
  FSTable f(w);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(f.WeightAt(i), w[i], 1e-9);
  }
}

TEST(FSTableTest, DecodeWeightsInvertsBuild) {
  std::vector<Weight> w;
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) w.push_back(0.01 + rng.NextDouble());
  FSTable f(w);
  const std::vector<Weight> decoded = f.DecodeWeights();
  ASSERT_EQ(decoded.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(decoded[i], w[i], 1e-9);
  }
}

TEST(FSTableTest, AppendMatchesBulkBuild) {
  std::vector<Weight> w;
  Xoshiro256 rng(5);
  FSTable incremental;
  for (int i = 0; i < 200; ++i) {
    const Weight x = 0.01 + rng.NextDouble();
    w.push_back(x);
    incremental.Append(x);  // Algorithm 4
    FSTable bulk(w);
    ASSERT_EQ(incremental.size(), bulk.size());
    for (std::size_t j = 0; j < w.size(); ++j) {
      ASSERT_NEAR(incremental.RawEntry(j), bulk.RawEntry(j), 1e-9)
          << "after " << i + 1 << " appends, entry " << j;
    }
  }
}

TEST(FSTableTest, InPlaceUpdatePropagatesToParents) {
  FSTable f({1.0, 1.0, 1.0, 1.0, 1.0});
  f.UpdateWeight(0, 3.0);  // Algorithm 3
  EXPECT_NEAR(f.WeightAt(0), 3.0, 1e-9);
  EXPECT_NEAR(f.TotalWeight(), 7.0, 1e-9);
  EXPECT_NEAR(f.Prefix(2), 5.0, 1e-9);
}

TEST(FSTableTest, AddDeltaEquivalentToUpdateWeight) {
  FSTable a({1.0, 2.0, 3.0, 4.0});
  FSTable b({1.0, 2.0, 3.0, 4.0});
  a.UpdateWeight(2, 10.0);
  b.AddDelta(2, 7.0);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(a.Prefix(i), b.Prefix(i), 1e-9);
  }
}

TEST(FSTableTest, RemoveSwapLastMirrorsLeafDeletion) {
  // Delete index 1 of {10, 20, 30, 40}: 40 moves into slot 1.
  FSTable f({10, 20, 30, 40});
  f.RemoveSwapLast(1);
  ASSERT_EQ(f.size(), 3u);
  EXPECT_NEAR(f.WeightAt(0), 10.0, 1e-9);
  EXPECT_NEAR(f.WeightAt(1), 40.0, 1e-9);
  EXPECT_NEAR(f.WeightAt(2), 30.0, 1e-9);
  EXPECT_NEAR(f.TotalWeight(), 80.0, 1e-9);
}

TEST(FSTableTest, RemoveLastElementIsTruncation) {
  FSTable f({1.0, 2.0, 3.0});
  f.RemoveSwapLast(2);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_NEAR(f.TotalWeight(), 3.0, 1e-9);
}

TEST(FSTableTest, RemoveDownToEmpty) {
  FSTable f({1.0, 2.0});
  f.RemoveSwapLast(0);
  f.RemoveSwapLast(0);
  EXPECT_TRUE(f.empty());
  EXPECT_DOUBLE_EQ(f.TotalWeight(), 0.0);
}

TEST(FSTableTest, SingleElement) {
  FSTable f;
  f.Append(2.5);
  EXPECT_NEAR(f.TotalWeight(), 2.5, 1e-12);
  EXPECT_EQ(f.FindIndex(0.0), 0u);
  EXPECT_EQ(f.FindIndex(2.4999), 0u);
}

// --- FTS sampling ----------------------------------------------------------

TEST(FSTableTest, FindIndexMatchesLinearScan) {
  std::vector<Weight> w;
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) w.push_back(0.01 + rng.NextDouble());
  FSTable f(w);
  const Weight total = f.TotalWeight();
  for (int trial = 0; trial < 2000; ++trial) {
    const Weight r = rng.NextDouble(total);
    // Reference: smallest i whose strict prefix sum exceeds r.
    Weight run = 0.0;
    std::size_t expect = w.size() - 1;
    for (std::size_t i = 0; i < w.size(); ++i) {
      run += w[i];
      if (run > r) {
        expect = i;
        break;
      }
    }
    EXPECT_EQ(f.FindIndex(r), expect) << "r=" << r;
  }
}

TEST(FSTableTest, FindIndexNonPowerOfTwoSizes) {
  // Exercise the mid >= n guard of Algorithm 5 for many sizes.
  Xoshiro256 rng(13);
  for (std::size_t n : {1u, 2u, 3u, 5u, 6u, 7u, 9u, 15u, 17u, 31u, 33u}) {
    std::vector<Weight> w;
    for (std::size_t i = 0; i < n; ++i) w.push_back(0.01 + rng.NextDouble());
    FSTable f(w);
    const Weight total = f.TotalWeight();
    for (int trial = 0; trial < 200; ++trial) {
      const std::size_t idx = f.FindIndex(rng.NextDouble(total));
      ASSERT_LT(idx, n);
    }
    // Boundary random numbers.
    EXPECT_EQ(f.FindIndex(0.0), 0u);
    ASSERT_LT(f.FindIndex(total * (1 - 1e-15)), n);
  }
}

TEST(FSTableTest, ZeroWeightEntriesNeverSampled) {
  FSTable f({1.0, 0.0, 0.0, 1.0});
  Xoshiro256 rng(17);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t idx = f.Sample(rng);
    EXPECT_TRUE(idx == 0 || idx == 3) << idx;
  }
}

// --- randomized equivalence with CSTable semantics -------------------------

class FSTableRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FSTableRandomized, MatchesShadowArrayUnderEdits) {
  Xoshiro256 rng(GetParam());
  std::vector<Weight> w;  // shadow raw weights with identical swap-deletes
  FSTable f;
  for (int step = 0; step < 800; ++step) {
    const double r = rng.NextDouble();
    if (w.empty() || r < 0.45) {
      const Weight x = 0.01 + rng.NextDouble();
      w.push_back(x);
      f.Append(x);
    } else if (r < 0.75) {
      const std::size_t i = rng.NextUint64(w.size());
      const Weight x = 0.01 + rng.NextDouble();
      w[i] = x;
      f.UpdateWeight(i, x);
    } else {
      const std::size_t i = rng.NextUint64(w.size());
      w[i] = w.back();
      w.pop_back();
      f.RemoveSwapLast(i);
    }
    ASSERT_EQ(f.size(), w.size());
    Weight run = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) {
      run += w[i];
      ASSERT_NEAR(f.Prefix(i), run, 1e-6) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FSTableRandomized,
                         ::testing::Values(1, 2, 3, 4, 5, 21, 404, 31337));

}  // namespace
}  // namespace platod2gl
