// Production concurrency scenarios under the deterministic schedule
// checker (PD2GL_SCHEDCHECK builds only; build with the `schedcheck`
// CMake preset and run `ctest -L schedcheck`).
//
// These are the model-checked ports of the wall-clock stress shapes in
// tests/test_race_stress.cc: instead of hammering big structures from 8
// threads and hoping the OS schedules the bad interleaving, each
// scenario is a 2-3 thread, few-operation skeleton whose *every*
// schedule (up to the preemption bound) is enumerated, plus a seeded
// random-walk sweep whose size CI cranks up via
// PD2GL_SCHEDCHECK_RANDOM_SCHEDULES (seed: PD2GL_SCHEDCHECK_SEED; both
// echoed in the gtest failure message so any CI failure replays
// locally).
//
// The suite also proves the checker catches real bugs: the CuckooMap
// shard-size race fixed in the TSan-regression era is reintroduced
// behind sched::SetCuckooShardSizeRace(true), and the checker must find
// it — deterministically, with the identical schedule across two runs
// and under replay of the reported decision list.
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/memory.h"
#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "core/samtree.h"
#include "dist/fault_injector.h"
#include "dist/replication.h"
#include "dist/shard.h"
#include "pipeline/epoch_coordinator.h"
#include "pipeline/update_ingestor.h"
#include "sampling/sample_cache.h"
#include "schedcheck/sched.h"
#include "serve/admission.h"
#include "serve/request_batcher.h"
#include "storage/cuckoo_map.h"

#ifndef PD2GL_SCHEDCHECK
#error "test_schedcheck_scenarios.cc requires -DPD2GL_SCHEDCHECK (schedcheck preset)"
#endif

namespace {

using platod2gl::CuckooMap;
using platod2gl::Edge;
using platod2gl::EpochCoordinator;
using platod2gl::IngestedUpdate;
using platod2gl::IngestorConfig;
using platod2gl::NodeArena;
using platod2gl::SampleCache;
using platod2gl::SampleCacheConfig;
using platod2gl::SampleCacheStats;
using platod2gl::Samtree;
using platod2gl::SamtreeConfig;
using platod2gl::Status;
using platod2gl::StatusCode;
using platod2gl::UpdateIngestor;
using platod2gl::VertexId;
using platod2gl::Xoshiro256;
namespace sched = platod2gl::sched;

std::uint64_t EnvU64(const char* name, std::uint64_t def) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? def : std::strtoull(v, nullptr, 10);
}

sched::Options Exhaustive(int preemption_bound = 2) {
  sched::Options opts;
  opts.mode = sched::Mode::kExhaustive;
  opts.preemption_bound = preemption_bound;
  return opts;
}

/// Random-walk options honouring the CI knobs; defaults keep local runs
/// fast (CI sets PD2GL_SCHEDCHECK_RANDOM_SCHEDULES=10000).
sched::Options RandomWalk() {
  sched::Options opts;
  opts.mode = sched::Mode::kRandomWalk;
  opts.seed = EnvU64("PD2GL_SCHEDCHECK_SEED", 1);
  opts.max_schedules = EnvU64("PD2GL_SCHEDCHECK_RANDOM_SCHEDULES", 1000);
  return opts;
}

/// Assert a passing exploration; on failure echo everything needed to
/// replay (seed, failing index, decision list, trace).
void ExpectOk(const sched::Result& r) {
  EXPECT_TRUE(r.ok) << "failing schedule: seed=" << r.seed
                    << " index=" << r.failing_index
                    << " choices=" << r.choices << "\n"
                    << r.failure << "\n"
                    << r.trace;
}

// ---------------------------------------------------------------------------
// Scenario 1 — EpochCoordinator: reader pins vs writer apply.
//
// Port of RaceStressTest.SamplersVsBatchUpdaterOnDisjointPartitions,
// reduced to the barrier itself: the writer mutates a *plain* cell under
// its WriteGuard; the reader reads it under a ReadGuard. If the barrier
// ever admitted both at once the checker reports the plain-access data
// race; the sched::Checks tie the pinned epoch to the data actually
// visible.
// ---------------------------------------------------------------------------

struct EpochState {
  EpochCoordinator coord;
  sched::NonAtomic<int> cell{0};
};

void EpochScenario(sched::Test& t) {
  auto s = std::make_shared<EpochState>();
  t.Spawn("writer", [s] {
    auto g = s->coord.BeginWrite();
    s->cell.store(s->cell.load() + 1);
  });
  t.Spawn("reader", [s] {
    auto g = s->coord.PinRead();
    const int seen = s->cell.load();
    sched::Check(s->coord.epoch() == g.epoch(),
                 "epoch is stable while a reader is pinned");
    sched::Check(seen == static_cast<int>(g.epoch()),
                 "reader sees exactly the writes of its pinned epoch");
  });
  t.AfterRun([s] {
    sched::Check(s->coord.epoch() == 1, "one apply advanced the epoch once");
    sched::Check(s->coord.readers_active() == 0, "all readers unpinned");
    sched::Check(s->cell.load() == 1, "the write landed");
  });
}

TEST(SchedCheckEpoch, ReaderWriterExclusionHoldsExhaustively) {
  const sched::Result r = sched::Explore(Exhaustive(), EpochScenario);
  ExpectOk(r);
  EXPECT_GT(r.schedules, 1u);
}

TEST(SchedCheckEpoch, ReaderWriterExclusionHoldsUnderRandomWalk) {
  ExpectOk(sched::Explore(RandomWalk(), EpochScenario));
}

// Two readers + one writer: write preference (a waiting writer holds off
// new readers) must not deadlock, and both readers' epoch/data coupling
// must hold in every schedule.
void EpochTwoReaderScenario(sched::Test& t) {
  auto s = std::make_shared<EpochState>();
  const auto reader = [s] {
    auto g = s->coord.PinRead();
    sched::Check(s->cell.load() == static_cast<int>(g.epoch()),
                 "reader sees exactly the writes of its pinned epoch");
  };
  t.Spawn("writer", [s] {
    auto g = s->coord.BeginWrite();
    s->cell.store(s->cell.load() + 1);
  });
  t.Spawn("reader-a", reader);
  t.Spawn("reader-b", reader);
  t.AfterRun([s] {
    sched::Check(s->coord.epoch() == 1, "one apply advanced the epoch once");
  });
}

TEST(SchedCheckEpoch, WritePreferenceNeverDeadlocksTwoReaders) {
  ExpectOk(sched::Explore(Exhaustive(), EpochTwoReaderScenario));
}

// ---------------------------------------------------------------------------
// Scenario 2 — UpdateIngestor: blocked producer vs consumer drain vs
// Close() shutdown.
//
// shard_capacity=1 forces the producer's second Offer to block; the
// consumer's drain and the closer's Close() race to wake it. Every
// schedule must terminate (a lost wakeup in the space_cv protocol shows
// up as a modeled deadlock), and the books must balance afterwards.
// ---------------------------------------------------------------------------

struct IngestorState {
  IngestorState() : ing(Config()) {}
  static IngestorConfig Config() {
    IngestorConfig c;
    c.num_shards = 1;
    c.shard_capacity = 1;
    c.policy = platod2gl::BackpressurePolicy::kBlock;
    return c;
  }
  UpdateIngestor ing;
  std::vector<IngestedUpdate> drained;
  Status st1 = Status::Ok();
  Status st2 = Status::Ok();
};

void IngestorScenario(sched::Test& t) {
  auto s = std::make_shared<IngestorState>();
  t.Spawn("producer", [s] {
    s->st1 = s->ing.OfferInsert(5, Edge{1, 2, 1.0, 0});
    s->st2 = s->ing.OfferInsert(6, Edge{1, 3, 1.0, 0});
  });
  t.Spawn("consumer", [s] { s->ing.DrainAll(&s->drained); });
  t.Spawn("closer", [s] { s->ing.Close(); });
  t.AfterRun([s] {
    std::vector<IngestedUpdate> rest;
    s->ing.DrainAll(&rest);
    const auto stats = s->ing.Stats();
    const std::uint64_t offers_ok = (s->st1.ok() ? 1u : 0u) +
                                    (s->st2.ok() ? 1u : 0u);
    sched::Check(s->st1.ok() || s->st1.code() == StatusCode::kUnavailable,
                 "first offer either lands or hits the close");
    sched::Check(s->st2.ok() || s->st2.code() == StatusCode::kUnavailable,
                 "second offer either lands or hits the close");
    sched::Check(!(s->st1.code() == StatusCode::kUnavailable && s->st2.ok()),
                 "closed_ is sticky: once an offer is refused, later ones are");
    sched::Check(stats.accepted == offers_ok, "accepted matches ok offers");
    sched::Check(stats.closed_rejects == 2 - offers_ok,
                 "every non-accepted offer is a counted close-reject");
    sched::Check(s->drained.size() + rest.size() == offers_ok,
                 "every accepted update is drained exactly once");
    sched::Check(s->ing.QueueDepth() == 0, "queue empty after final drain");
    const std::uint64_t want_wm = s->st2.ok() ? 6u : (s->st1.ok() ? 5u : 0u);
    sched::Check(stats.watermark == want_wm,
                 "watermark is the newest accepted timestamp");
    // Per-edge FIFO: the shard queue hands updates back in offer order.
    std::uint64_t last_ts = 0;
    for (const auto& v : {s->drained, rest}) {
      for (const auto& u : v) {
        sched::Check(u.update.timestamp >= last_ts, "drain preserves FIFO");
        last_ts = u.update.timestamp;
      }
    }
  });
}

TEST(SchedCheckIngestor, BlockedProducerDrainAndCloseAlwaysTerminate) {
  const sched::Result r = sched::Explore(Exhaustive(), IngestorScenario);
  ExpectOk(r);
  EXPECT_GT(r.schedules, 1u);
}

TEST(SchedCheckIngestor, ShutdownBooksBalanceUnderRandomWalk) {
  ExpectOk(sched::Explore(RandomWalk(), IngestorScenario));
}

// ---------------------------------------------------------------------------
// Scenario 3 — CuckooMap: concurrent inserts vs lock-free Size polling.
//
// Port of RaceStressTest.CuckooMapConcurrentWritersAndSizePolling. One
// shard, so both writers and the poll contend on the same lock and the
// same size counter. With the production atomic counter every schedule
// is clean; SchedCheckCuckooRace below flips the counter back to the
// pre-fix plain size_t and demands the checker find the race.
// ---------------------------------------------------------------------------

void CuckooScenario(sched::Test& t) {
  auto map = std::make_shared<CuckooMap<std::uint64_t>>(
      /*num_shards=*/1, /*initial_buckets_per_shard=*/2);
  t.Spawn("insert-a", [map] {
    map->With(1, [](std::uint64_t& v) { v = 10; });
  });
  t.Spawn("insert-b", [map] {
    map->With(2, [](std::uint64_t& v) { v = 20; });
    const std::size_t n = map->Size();
    sched::Check(n >= 1 && n <= 2, "size stays within inserted bounds");
  });
  t.AfterRun([map] {
    sched::Check(map->Size() == 2, "both inserts counted");
    sched::Check(map->Contains(1) && map->Contains(2), "both keys present");
  });
}

TEST(SchedCheckCuckoo, InsertsAndSizePollingAreCleanExhaustively) {
  const sched::Result r = sched::Explore(Exhaustive(), CuckooScenario);
  ExpectOk(r);
  EXPECT_GT(r.schedules, 1u);
}

TEST(SchedCheckCuckoo, InsertsAndSizePollingAreCleanUnderRandomWalk) {
  ExpectOk(sched::Explore(RandomWalk(), CuckooScenario));
}

/// Reintroduces the historical bug for the duration of one test: shard
/// sizes kept in a plain size_t, written under the shard lock but read
/// lock-free by Size().
struct ShardSizeRaceToggle {
  ShardSizeRaceToggle() { sched::SetCuckooShardSizeRace(true); }
  ~ShardSizeRaceToggle() { sched::SetCuckooShardSizeRace(false); }
};

TEST(SchedCheckCuckooRace, ReintroducedShardSizeRaceIsFoundDeterministically) {
  ShardSizeRaceToggle toggle;
  const sched::Result r1 = sched::Explore(Exhaustive(), CuckooScenario);
  ASSERT_FALSE(r1.ok) << "checker failed to find the reintroduced race";
  EXPECT_NE(r1.failure.find("data race"), std::string::npos) << r1.failure;
  EXPECT_FALSE(r1.trace.empty());
  EXPECT_FALSE(r1.choices.empty());

  // Determinism: a second full exploration finds the *same* schedule.
  const sched::Result r2 = sched::Explore(Exhaustive(), CuckooScenario);
  ASSERT_FALSE(r2.ok);
  EXPECT_EQ(r1.failing_index, r2.failing_index);
  EXPECT_EQ(r1.failure, r2.failure);
  EXPECT_EQ(r1.trace, r2.trace);
  EXPECT_EQ(r1.choices, r2.choices);

  // And the reported decision list replays to the identical failure.
  sched::Options replay;
  replay.replay = r1.choices;
  const sched::Result r3 = sched::Explore(replay, CuckooScenario);
  ASSERT_FALSE(r3.ok);
  EXPECT_EQ(r1.failure, r3.failure);
  EXPECT_EQ(r1.trace, r3.trace);
}

TEST(SchedCheckCuckooRace, ReintroducedShardSizeRaceIsFoundByRandomWalk) {
  ShardSizeRaceToggle toggle;
  sched::Options opts = RandomWalk();
  opts.max_schedules = 10000;  // plenty; typically found within a handful
  const sched::Result r = sched::Explore(opts, CuckooScenario);
  ASSERT_FALSE(r.ok) << "random walk (seed=" << opts.seed
                     << ") failed to find the reintroduced race";
  // Replays from (seed, failing_index) alone.
  sched::Options again = opts;
  again.start_index = r.failing_index;
  again.max_schedules = 1;
  const sched::Result rr = sched::Explore(again, CuckooScenario);
  ASSERT_FALSE(rr.ok);
  EXPECT_EQ(r.failure, rr.failure);
  EXPECT_EQ(r.trace, rr.trace);
  EXPECT_EQ(r.choices, rr.choices);
}

// ---------------------------------------------------------------------------
// Scenario 4 — SampleCache: valid hit vs stale-entry rebuild on one
// shard.
//
// Port of RaceStressTest.SampleCacheAdmissionEvictionRebuildChurn,
// honouring the cache's contract (tree mutations happen in quiescent
// gaps, here: before the threads start). tree1's entry is staled by a
// pre-scenario Remove, so one thread exercises the stale->rebuild->serve
// path while the other takes a valid hit on the same shard's LRU; the
// rebuilt entry must never serve the removed neighbour.
// ---------------------------------------------------------------------------

struct CacheState {
  CacheState()
      : cache(Config()),
        tree1(Samtree::BulkBuild({{1, 1.0}, {2, 1.0}})),
        tree2(Samtree::BulkBuild({{5, 1.0}, {6, 1.0}})) {
    // Admit both entries, then invalidate tree1's (quiescent gap — no
    // scenario thread is running yet).
    Xoshiro256 rng(3);
    std::vector<VertexId> out;
    cache.Sample(1, 0, tree1, /*weighted=*/false, 1, rng, &out);
    cache.Sample(2, 0, tree2, /*weighted=*/false, 1, rng, &out);
    tree1.Remove(2);
  }
  static SampleCacheConfig Config() {
    SampleCacheConfig c;
    c.capacity = 4;
    c.num_shards = 1;
    c.min_degree = 1;
    c.admit_after_misses = 0;
    return c;
  }
  SampleCache cache;
  Samtree tree1;
  Samtree tree2;
};

void CacheScenario(sched::Test& t) {
  auto s = std::make_shared<CacheState>();
  t.Spawn("stale-sampler", [s] {
    Xoshiro256 rng(7);
    std::vector<VertexId> out;
    const bool served =
        s->cache.Sample(1, 0, s->tree1, /*weighted=*/false, 3, rng, &out);
    sched::Check(served, "stale entry is rebuilt and served, not dropped");
    for (const VertexId v : out) {
      sched::Check(v == 1, "rebuilt entry never serves the removed neighbour");
    }
  });
  t.Spawn("hot-sampler", [s] {
    Xoshiro256 rng(9);
    std::vector<VertexId> out;
    const bool served =
        s->cache.Sample(2, 0, s->tree2, /*weighted=*/false, 3, rng, &out);
    sched::Check(served, "valid entry is a hit");
    for (const VertexId v : out) {
      sched::Check(v == 5 || v == 6, "hit serves the live neighbourhood");
    }
  });
  t.AfterRun([s] {
    const SampleCacheStats stats = s->cache.Stats();
    // 2 warm-up misses + 1 stale hit + 1 valid hit; every call in
    // exactly one bucket, rebuilds mirror stale hits.
    sched::Check(stats.misses == 2, "warm-up misses counted");
    sched::Check(stats.hits == 1, "exactly one valid hit");
    sched::Check(stats.stale_hits == 1, "exactly one stale hit");
    sched::Check(stats.rebuilds == stats.stale_hits,
                 "every stale hit was rebuilt in place");
    sched::Check(stats.evictions == 0, "capacity 4 never evicts 2 entries");
    sched::Check(s->cache.size() == 2, "both entries resident");
  });
}

TEST(SchedCheckSampleCache, HitAndInvalidationRebuildAreCleanExhaustively) {
  const sched::Result r = sched::Explore(Exhaustive(), CacheScenario);
  ExpectOk(r);
  EXPECT_GT(r.schedules, 1u);
}

TEST(SchedCheckSampleCache, HitAndInvalidationRebuildAreCleanUnderRandomWalk) {
  ExpectOk(sched::Explore(RandomWalk(), CacheScenario));
}

// ---------------------------------------------------------------------------
// Scenario 5 — NodeArena: concurrent carve/return across size classes
// plus a live Samtree switched onto the arena mid-flight (SetArena is
// what TopologyStore::InstallTree does to adopted trees).
// ---------------------------------------------------------------------------

struct ArenaState {
  // Tiny chunks so the scenario crosses a chunk refill; members ordered
  // so the tree (optional) dies before the arena it allocates from.
  NodeArena arena{1024};
  std::optional<Samtree> tree;
};

void ArenaScenario(sched::Test& t) {
  auto s = std::make_shared<ArenaState>();
  SamtreeConfig cfg;
  cfg.node_capacity = 4;  // minimal capacity: 3 extra inserts force a split
  s->tree = Samtree::BulkBuild({{1, 1.0}, {2, 1.0}, {3, 1.0}, {4, 1.0}}, cfg);
  t.Spawn("grower", [s] {
    // Heap-built tree adopts the arena mid-flight; the split below must
    // carve its new nodes from the arena while "mixer" churns it.
    s->tree->SetArena(&s->arena);
    s->tree->Insert(5, 1.0);
    s->tree->Insert(6, 1.0);
    s->tree->Insert(7, 1.0);
  });
  t.Spawn("mixer", [s] {
    void* a = s->arena.Allocate(48);
    void* b = s->arena.Allocate(200);  // distinct size class
    s->arena.Deallocate(a, 48);
    void* c = s->arena.Allocate(48);  // free-list reuse of a's class
    s->arena.Deallocate(b, 200);
    s->arena.Deallocate(c, 48);
    sched::Check(s->arena.MemoryUsage() > 0, "arena reserved a chunk");
  });
  t.AfterRun([s] {
    std::string err;
    sched::Check(s->tree->CheckInvariants(&err),
                 "tree consistent after arena adoption: " + err);
    sched::Check(s->tree->size() == 7, "all inserts landed");
    const std::size_t live = s->arena.LiveBytes();
    sched::Check(live > 0, "split nodes were carved from the arena");
    sched::Check(live <= s->arena.MemoryUsage(),
                 "live bytes bounded by reserved bytes");
    // Destroying the tree must return every arena node: the mixed
    // heap/arena origins route through NodeDeleter correctly.
    s->tree.reset();
    sched::Check(s->arena.LiveBytes() == 0,
                 "every arena node returned on destruction");
    sched::Check(s->arena.SlackBytes() == s->arena.MemoryUsage(),
                 "all reserved bytes idle after teardown");
  });
}

TEST(SchedCheckArena, ConcurrentCarveReturnAndAdoptionAreCleanExhaustively) {
  const sched::Result r = sched::Explore(Exhaustive(), ArenaScenario);
  ExpectOk(r);
  EXPECT_GT(r.schedules, 1u);
}

TEST(SchedCheckArena, ConcurrentCarveReturnAndAdoptionUnderRandomWalk) {
  ExpectOk(sched::Explore(RandomWalk(), ArenaScenario));
}

// ---------------------------------------------------------------------------
// Scenario 6 — AckWindow: waiter vs two concurrent cumulative acks.
//
// The replication ack watermark (dist/replication.h) is a classic
// monitor: WaitForAcked sleeps on a condvar, Ack advances the watermark
// and notifies *under the mutex*. A notify outside the lock (or a missed
// one) is a lost wakeup, which every schedule here would surface as a
// modeled deadlock of "waiter".
// ---------------------------------------------------------------------------

void AckWindowScenario(sched::Test& t) {
  auto w = std::make_shared<platod2gl::AckWindow>();
  t.Spawn("waiter", [w] {
    w->WaitForAcked(2);
    sched::Check(w->acked() >= 2, "wait returns only once the ack landed");
  });
  t.Spawn("acker-a", [w] { w->Ack(1); });
  t.Spawn("acker-b", [w] { w->Ack(2); });
  t.AfterRun([w] {
    sched::Check(w->acked() == 2,
                 "cumulative watermark is the max seq acked, in any order");
  });
}

TEST(SchedCheckAckWindow, NoLostWakeupExhaustively) {
  const sched::Result r = sched::Explore(Exhaustive(), AckWindowScenario);
  ExpectOk(r);
  EXPECT_GT(r.schedules, 1u);
}

TEST(SchedCheckAckWindow, NoLostWakeupUnderRandomWalk) {
  ExpectOk(sched::Explore(RandomWalk(), AckWindowScenario));
}

// ---------------------------------------------------------------------------
// Scenario 7 — ReplicationManager: failover promotion racing the epoch
// barrier.
//
// Promotion swaps the primary's store under cutover->BeginWrite(); the
// replica read path pins cutover->PinRead() *while already holding the
// shard's replication mutex* — the same lock order promotion uses, so
// the checker proves the pair can never ABBA-deadlock. A third thread
// holds a bare read pin (the cluster's client-serial read path), forcing
// the promoter to wait at the barrier in some schedules; write
// preference must still terminate every schedule, and the promoted
// store must serve exactly the replicated edges.
// ---------------------------------------------------------------------------

struct PromoteState {
  PromoteState() : injector({}, /*num_shards=*/1) {
    platod2gl::ReplicationConfig rc;
    rc.num_replicas = 1;
    rc.suspicion_timeout_us = 100;
    rc.staleness_budget = 0;  // only a fully caught-up replica may serve
    mgr = std::make_unique<platod2gl::ReplicationManager>(
        rc, platod2gl::GraphStoreConfig{},
        std::vector<platod2gl::GraphShard*>{&primary}, &injector, &coord);
    using platod2gl::UpdateKind;
    primary.Apply({UpdateKind::kInsert, Edge{1, 2, 1.0, 0}});
    primary.Apply({UpdateKind::kInsert, Edge{1, 3, 2.0, 0}});
    mgr->Kick();  // fault-free sync ship: replica is caught up at seq 2
    injector.CrashShard(0);
    primary.Crash();
    mgr->AdvanceTime(1);  // first observation starts the suspicion clock
  }
  platod2gl::GraphShard primary;
  platod2gl::FaultInjector injector;
  EpochCoordinator coord;
  std::unique_ptr<platod2gl::ReplicationManager> mgr;
  std::size_t failovers = 0;
};

void PromoteScenario(sched::Test& t) {
  auto s = std::make_shared<PromoteState>();
  t.Spawn("promoter", [s] {
    const auto hr = s->mgr->AdvanceTime(200);  // suspicion timeout elapsed
    s->failovers = hr.failovers;
  });
  t.Spawn("replica-reader", [s] {
    const auto serve = s->mgr->SampleFromReplica(0, {1}, /*fanout=*/2,
                                                 /*weighted=*/false,
                                                 /*rng_seed=*/42, 0);
    if (serve.has_value()) {
      // Served before the promotion consumed the replica: caught up
      // (budget 0) and drawn from the replicated neighbourhood.
      sched::Check(serve->lag == 0, "budget 0 only admits a caught-up serve");
      for (const VertexId v : serve->neighbors.at(0)) {
        sched::Check(v == 2 || v == 3, "replica serves replicated edges only");
      }
    }
    // else: promotion won the shard mutex first and emptied the slot.
  });
  t.Spawn("pinned-reader", [s] {
    auto g = s->coord.PinRead();
    sched::Check(s->coord.epoch() == g.epoch(),
                 "epoch is stable while the read pin is held");
    sched::Check(s->coord.writers_waiting() <= 1,
                 "at most the promoter is parked at the barrier");
  });
  t.AfterRun([s] {
    sched::Check(s->failovers == 1, "exactly one promotion happened");
    sched::Check(s->coord.epoch() == 1, "promotion ran under the barrier");
    sched::Check(s->coord.writers_waiting() == 0, "barrier drained");
    sched::Check(s->coord.readers_active() == 0, "all readers unpinned");
    sched::Check(!s->primary.crashed(), "promoted store is serving");
    Xoshiro256 rng(5);
    std::vector<VertexId> out;
    sched::Check(s->primary.SampleNeighbors(1, 2, /*weighted=*/false, rng,
                                            &out, 0),
                 "promoted primary serves the shard");
    for (const VertexId v : out) {
      sched::Check(v == 2 || v == 3,
                   "promoted store holds exactly the replicated edges");
    }
  });
}

TEST(SchedCheckReplication, PromotionVsEpochBarrierIsCleanExhaustively) {
  // Promotion + store sampling are long threads (many sync ops each), so
  // bound 2 explodes to minutes; one preemption already covers the
  // interesting handoffs (mutex acquisition order, barrier park/resume).
  // The random-walk companion covers deeper interleavings.
  const sched::Result r =
      sched::Explore(Exhaustive(/*preemption_bound=*/1), PromoteScenario);
  ExpectOk(r);
  EXPECT_GT(r.schedules, 1u);
}

TEST(SchedCheckReplication, PromotionVsEpochBarrierUnderRandomWalk) {
  ExpectOk(sched::Explore(RandomWalk(), PromoteScenario));
}

// ---------------------------------------------------------------------------
// Scenario 8 — AdmissionController: blocked kBlock submitter vs Release
// vs Close.
//
// The serving layer's admission window (src/serve/admission.h) is the
// same monitor shape as the ingestor's space_cv: a full window parks the
// kBlock submitter in Admit(); Release() frees the only slot and
// Close() shuts the window, racing to wake it. A notify outside the
// lock — or none at all — is a lost wakeup every schedule here surfaces
// as a modeled deadlock of "blocked-submitter"; afterwards the window
// books must balance regardless of who won.
// ---------------------------------------------------------------------------

struct AdmissionState {
  AdmissionState() : ac(Config()) {
    // Fill the 1-slot window before any scenario thread runs, so the
    // submitter below finds it full in schedules where it goes first.
    verdict0 = ac.TryAdmit(/*tenant=*/0);
  }
  static platod2gl::serve::AdmissionConfig Config() {
    platod2gl::serve::AdmissionConfig c;
    c.max_in_flight = 1;
    c.tenant_quota = 1;
    c.policy = platod2gl::serve::AdmissionPolicy::kBlock;
    return c;
  }
  platod2gl::serve::AdmissionController ac;
  platod2gl::serve::AdmissionController::Verdict verdict0;
  platod2gl::serve::AdmissionController::Verdict verdict =
      platod2gl::serve::AdmissionController::Verdict::kWindowFull;
};

void AdmissionWindowScenario(sched::Test& t) {
  using Verdict = platod2gl::serve::AdmissionController::Verdict;
  auto s = std::make_shared<AdmissionState>();
  sched::Check(s->verdict0 == Verdict::kAdmitted, "pre-fill took the slot");
  t.Spawn("blocked-submitter", [s] { s->verdict = s->ac.Admit(1); });
  t.Spawn("releaser", [s] { s->ac.Release(0); });
  t.Spawn("closer", [s] { s->ac.Close(); });
  t.AfterRun([s] {
    using Verdict = platod2gl::serve::AdmissionController::Verdict;
    sched::Check(s->verdict == Verdict::kAdmitted ||
                     s->verdict == Verdict::kClosed,
                 "a blocking admit either lands or observes the close");
    const auto stats = s->ac.Stats();
    const std::uint64_t admitted =
        1 + (s->verdict == Verdict::kAdmitted ? 1u : 0u);
    sched::Check(stats.admitted == admitted, "admissions counted exactly");
    sched::Check(stats.closed_rejects ==
                     (s->verdict == Verdict::kClosed ? 1u : 0u),
                 "a closed verdict is a counted close-reject");
    // One Release for the pre-filled slot: whatever the submitter won is
    // still in flight.
    sched::Check(s->ac.in_flight() == admitted - 1,
                 "window occupancy balances admissions minus releases");
    sched::Check(stats.blocked_waits <= 1, "the submitter parks at most once");
    sched::Check(s->ac.closed(), "close is sticky");
    sched::Check(s->ac.TryAdmit(2) == Verdict::kClosed,
                 "new arrivals observe the close");
  });
}

TEST(SchedCheckAdmission, BlockedSubmitterReleaseAndCloseAlwaysTerminate) {
  const sched::Result r = sched::Explore(Exhaustive(), AdmissionWindowScenario);
  ExpectOk(r);
  EXPECT_GT(r.schedules, 1u);
}

TEST(SchedCheckAdmission, WindowBooksBalanceUnderRandomWalk) {
  ExpectOk(sched::Explore(RandomWalk(), AdmissionWindowScenario));
}

// ---------------------------------------------------------------------------
// Scenario 9 — RequestBatcher: Close() racing two Enqueues.
//
// Enqueue's closed check and its push must be one critical section: an
// unlocked check-then-lock would let Close() land in the gap and strand
// an "accepted" request in a queue nothing will ever drain. Every
// schedule checks the no-stranding invariant directly: a force-formed
// batch after the race returns exactly the accepted requests.
// ---------------------------------------------------------------------------

struct BatcherState {
  BatcherState() : b(Config()) {}
  static platod2gl::serve::BatcherConfig Config() {
    platod2gl::serve::BatcherConfig c;
    c.max_batch = 4;
    c.window_us = 10;
    return c;
  }
  static platod2gl::serve::PendingRequest Pending(std::uint32_t tenant) {
    platod2gl::serve::PendingRequest p;
    p.request.tenant = tenant;
    p.request.request_id = tenant;
    return p;
  }
  platod2gl::serve::RequestBatcher b;
  Status st1 = Status::Ok();
  Status st2 = Status::Ok();
};

void BatcherCloseScenario(sched::Test& t) {
  auto s = std::make_shared<BatcherState>();
  t.Spawn("submitter-a", [s] { s->st1 = s->b.Enqueue(BatcherState::Pending(0), 0); });
  t.Spawn("submitter-b", [s] { s->st2 = s->b.Enqueue(BatcherState::Pending(1), 0); });
  t.Spawn("closer", [s] { s->b.Close(); });
  t.AfterRun([s] {
    const std::uint64_t accepted = (s->st1.ok() ? 1u : 0u) +
                                   (s->st2.ok() ? 1u : 0u);
    for (const Status* st : {&s->st1, &s->st2}) {
      sched::Check(st->ok() || st->code() == StatusCode::kUnavailable,
                   "enqueue either lands or observes the close");
    }
    const auto stats = s->b.Stats();
    sched::Check(stats.enqueued == accepted, "accepted enqueues counted");
    sched::Check(stats.closed_rejects == 2 - accepted,
                 "every refused enqueue is a counted close-reject");
    // The no-stranding invariant: a drain recovers exactly what was
    // accepted, even though the batcher is closed.
    const auto batch = s->b.FormBatch(/*now_us=*/0, /*force=*/true);
    sched::Check(batch.size() == accepted,
                 "force-formed batch returns every accepted request");
    sched::Check(s->b.Depth() == 0, "queue empty after the drain");
  });
}

TEST(SchedCheckBatcher, CloseVsEnqueueNeverStrandsARequest) {
  const sched::Result r = sched::Explore(Exhaustive(), BatcherCloseScenario);
  ExpectOk(r);
  EXPECT_GT(r.schedules, 1u);
}

TEST(SchedCheckBatcher, CloseVsEnqueueUnderRandomWalk) {
  ExpectOk(sched::Explore(RandomWalk(), BatcherCloseScenario));
}

}  // namespace
