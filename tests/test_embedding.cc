// EmbeddingTable and DeepWalkTrainer tests.
#include "gnn/deepwalk.h"
#include "gnn/embedding.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/random.h"
#include "storage/graph_store.h"

namespace platod2gl {
namespace {

TEST(EmbeddingTableTest, LazyCreationAndStability) {
  EmbeddingTable table(8);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.RowIfExists(5), nullptr);
  float* row = table.Row(5);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.RowIfExists(5), row);
  // Pointer survives creation of many other rows (rehash).
  for (VertexId v = 100; v < 5000; ++v) table.Row(v);
  EXPECT_EQ(table.Row(5), row);
}

TEST(EmbeddingTableTest, InitIsDeterministicPerVertex) {
  EmbeddingTable a(16, /*seed=*/7), b(16, /*seed=*/7);
  // Touch in different orders: rows must still match.
  b.Row(2);
  const float* ra = a.Row(1);
  const float* rb = b.Row(1);
  for (std::size_t d = 0; d < 16; ++d) EXPECT_EQ(ra[d], rb[d]);
  // Different seed -> different init.
  EmbeddingTable c(16, /*seed=*/8);
  bool any_diff = false;
  const float* rc = c.Row(1);
  for (std::size_t d = 0; d < 16; ++d) any_diff |= (rc[d] != ra[d]);
  EXPECT_TRUE(any_diff);
}

TEST(EmbeddingTableTest, InitBounded) {
  EmbeddingTable table(32);
  const float* row = table.Row(9);
  for (std::size_t d = 0; d < 32; ++d) {
    EXPECT_LE(std::abs(row[d]), 0.5f / 32.0f + 1e-6f);
  }
}

TEST(EmbeddingTableTest, DotAndAccumulate) {
  EmbeddingTable table(4);
  float* a = table.Row(1);
  float* b = table.Row(2);
  for (int d = 0; d < 4; ++d) {
    a[d] = 1.0f;
    b[d] = 2.0f;
  }
  EXPECT_FLOAT_EQ(table.Dot(1, 2), 8.0f);
  const float grad[4] = {1.0f, 0.0f, -1.0f, 0.5f};
  table.Accumulate(1, grad, 0.5f);
  EXPECT_FLOAT_EQ(a[0], 1.5f);
  EXPECT_FLOAT_EQ(a[2], 0.5f);
}

TEST(EmbeddingTableTest, ConcurrentRowCreation) {
  EmbeddingTable table(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&table, t] {
      for (VertexId v = 0; v < 2000; ++v) {
        table.Row(static_cast<VertexId>(t) * 10000 + v);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(table.size(), 6 * 2000u);
}

TEST(DeepWalkTest, LossDecreasesOverEpochs) {
  // Ring graph: skip-gram should comfortably fit local co-occurrence.
  GraphStore g;
  constexpr VertexId kN = 40;
  for (VertexId v = 0; v < kN; ++v) {
    g.AddEdge({v, (v + 1) % kN, 1.0, 0});
    g.AddEdge({(v + 1) % kN, v, 1.0, 0});
  }
  std::vector<VertexId> vocab;
  for (VertexId v = 0; v < kN; ++v) vocab.push_back(v);

  DeepWalkTrainer trainer(&g, vocab,
                          DeepWalkConfig{.dim = 16, .learning_rate = 0.1f});
  Xoshiro256 rng(5);
  const double first = trainer.TrainEpoch(vocab, rng);
  double last = first;
  for (int e = 0; e < 25; ++e) last = trainer.TrainEpoch(vocab, rng);
  // Negative sampling puts a floor under the loss (uniform negatives hit
  // true neighbours on a small ring), so check improvement plus the
  // structural property: adjacent ring vertices embed closer than
  // far-apart ones.
  EXPECT_LT(last, first * 0.95);
  double near = 0.0, far = 0.0;
  for (VertexId v = 0; v < kN; ++v) {
    near += trainer.Similarity(v, (v + 1) % kN);
    far += trainer.Similarity(v, (v + kN / 2) % kN);
  }
  EXPECT_GT(near, far + 1.0);
}

TEST(DeepWalkTest, CommunityStructureSeparates) {
  GraphStore g;
  constexpr VertexId kSize = 40;
  Xoshiro256 gen(1);
  for (VertexId v = 0; v < 2 * kSize; ++v) {
    const VertexId base = (v / kSize) * kSize;
    for (int k = 0; k < 5; ++k) {
      const VertexId u = base + gen.NextUint64(kSize);
      if (u != v) g.AddEdge({v, u, 1.0, 0});
    }
  }
  std::vector<VertexId> vocab;
  for (VertexId v = 0; v < 2 * kSize; ++v) vocab.push_back(v);

  DeepWalkTrainer trainer(&g, vocab,
                          DeepWalkConfig{.dim = 16, .learning_rate = 0.08f});
  Xoshiro256 rng(6);
  for (int e = 0; e < 20; ++e) trainer.TrainEpoch(vocab, rng);

  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const VertexId a = rng.NextUint64(2 * kSize);
    const VertexId b = rng.NextUint64(2 * kSize);
    if (a == b) continue;
    const float s = trainer.Similarity(a, b);
    if (a / kSize == b / kSize) {
      intra += s;
      ++n_intra;
    } else {
      inter += s;
      ++n_inter;
    }
  }
  EXPECT_GT(intra / n_intra, inter / n_inter + 0.2)
      << "intra-community similarity must exceed inter-community";
}

TEST(DeepWalkTest, HandlesDanglingSeeds) {
  GraphStore g;
  g.AddEdge({1, 2, 1.0, 0});  // vertex 3 has no edges at all
  DeepWalkTrainer trainer(&g, {1, 2, 3}, DeepWalkConfig{.dim = 4});
  Xoshiro256 rng(7);
  const double loss = trainer.TrainEpoch({1, 3}, rng);
  EXPECT_TRUE(std::isfinite(loss));
}

}  // namespace
}  // namespace platod2gl
