// α-Split tests (paper Algorithm 1 / Theorem 1).
#include "core/alpha_split.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/random.h"

namespace platod2gl {
namespace {

// Validates the partition postcondition around position p.
void ExpectPartitioned(const std::vector<VertexId>& ids, std::size_t p) {
  for (std::size_t j = 0; j < p; ++j) {
    EXPECT_LT(ids[j], ids[p]) << "left element " << j;
  }
  for (std::size_t j = p + 1; j < ids.size(); ++j) {
    EXPECT_GT(ids[j], ids[p]) << "right element " << j;
  }
}

TEST(AlphaSplitTest, ExactMedianWithAlphaZero) {
  std::vector<VertexId> ids = {9, 1, 7, 3, 5};
  std::vector<Weight> weights = {0.9, 0.1, 0.7, 0.3, 0.5};
  const std::size_t p = AlphaSplit(ids, weights, ids.size() / 2, 0);
  EXPECT_EQ(p, 2u);  // QuickSelect degenerate case: exact median position
  EXPECT_EQ(ids[p], 5u);
  ExpectPartitioned(ids, p);
}

TEST(AlphaSplitTest, WeightsFollowTheirIds) {
  std::vector<VertexId> ids = {40, 10, 30, 20, 50};
  std::vector<Weight> weights = {4.0, 1.0, 3.0, 2.0, 5.0};
  AlphaSplit(ids, weights, 2, 0);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_DOUBLE_EQ(weights[i], static_cast<double>(ids[i]) / 10.0)
        << "pair broken at " << i;
  }
}

TEST(AlphaSplitTest, PaperExample2Split) {
  // Example 2: leaf {1,2,3,4,6} (capacity 4, after inserting 6) splits
  // into {1,2} and {3,4,6}: the pivot position is 2 (element 3).
  std::vector<VertexId> ids = {1, 2, 3, 4, 6};
  std::vector<Weight> weights = {0.3, 0.4, 0.1, 0.7, 0.3};
  const std::size_t p = AlphaSplit(ids, weights, ids.size() / 2, 0);
  EXPECT_EQ(p, 2u);
  EXPECT_EQ(ids[p], 3u);
  std::vector<VertexId> left(ids.begin(), ids.begin() + 2);
  std::vector<VertexId> right(ids.begin() + 2, ids.end());
  std::sort(left.begin(), left.end());
  std::sort(right.begin(), right.end());
  EXPECT_EQ(left, (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(right, (std::vector<VertexId>{3, 4, 6}));
}

TEST(AlphaSplitTest, AlreadySortedInput) {
  std::vector<VertexId> ids(101);
  std::iota(ids.begin(), ids.end(), 0);
  std::vector<Weight> weights(101, 1.0);
  const std::size_t p = AlphaSplit(ids, weights, 50, 0);
  EXPECT_EQ(p, 50u);
  EXPECT_EQ(ids[p], 50u);
}

TEST(AlphaSplitTest, ReverseSortedInput) {
  std::vector<VertexId> ids(101);
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = 100 - i;
  std::vector<Weight> weights(101, 1.0);
  const std::size_t p = AlphaSplit(ids, weights, 50, 0);
  EXPECT_EQ(p, 50u);
  ExpectPartitioned(ids, p);
}

class AlphaSplitRandomized
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(AlphaSplitRandomized, SatisfiesAlphaRelaxedInequality) {
  const auto [seed, alpha] = GetParam();
  Xoshiro256 rng(seed);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 5 + rng.NextUint64(500);
    std::vector<VertexId> ids;
    std::unordered_map<VertexId, Weight> pairing;
    while (ids.size() < n) {
      const VertexId v = rng.NextUint64(1u << 30);
      if (pairing.count(v)) continue;  // IDs unique, like real neighbours
      ids.push_back(v);
      pairing[v] = 0.01 + rng.NextDouble();
    }
    std::vector<Weight> weights;
    for (VertexId v : ids) weights.push_back(pairing[v]);

    const std::size_t target = n / 2;
    const std::size_t p = AlphaSplit(ids, weights, target, alpha);

    // Equation (3): |p - target| <= alpha (alpha 0 => exact).
    const std::size_t dist = p > target ? p - target : target - p;
    EXPECT_LE(dist, alpha) << "n=" << n;
    ASSERT_LT(p, n);
    EXPECT_GT(p, 0u) << "degenerate split";
    EXPECT_LT(p, n - 1) << "degenerate split";
    ExpectPartitioned(ids, p);
    // Weights still paired with their IDs.
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_DOUBLE_EQ(weights[i], pairing[ids[i]]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlphaSplitRandomized,
    ::testing::Combine(::testing::Values(7, 13, 29),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{2}, std::size_t{8},
                                         std::size_t{32})));

}  // namespace
}  // namespace platod2gl
