// Samtree query extensions: weighted sampling without replacement
// (FSTable-enabled), ranged counting/enumeration, plus the TopologyStore
// pass-throughs (distinct sampling, vertex removal, range counts).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "core/samtree.h"
#include "storage/topology_store.h"

namespace platod2gl {
namespace {

TEST(SampleDistinctTest, ReturnsDistinctNeighbors) {
  Samtree t(SamtreeConfig{.node_capacity = 8});
  for (VertexId v = 0; v < 100; ++v) t.Insert(v, 0.1 + (v % 7) * 0.3);
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto picks = t.SampleWeightedDistinct(20, rng);
    EXPECT_EQ(picks.size(), 20u);
    std::set<VertexId> uniq(picks.begin(), picks.end());
    EXPECT_EQ(uniq.size(), picks.size()) << "duplicates drawn";
  }
}

TEST(SampleDistinctTest, KLargerThanDegreeReturnsAll) {
  Samtree t(SamtreeConfig{.node_capacity = 4});
  for (VertexId v = 0; v < 10; ++v) t.Insert(v, 1.0);
  Xoshiro256 rng(2);
  const auto picks = t.SampleWeightedDistinct(100, rng);
  std::set<VertexId> uniq(picks.begin(), picks.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(SampleDistinctTest, TreeRestoredAfterSampling) {
  Samtree t(SamtreeConfig{.node_capacity = 8});
  std::map<VertexId, Weight> weights;
  Xoshiro256 gen(3);
  for (VertexId v = 0; v < 200; ++v) {
    const Weight w = 0.05 + gen.NextDouble();
    t.Insert(v, w);
    weights[v] = w;
  }
  const Weight total_before = t.TotalWeight();

  Xoshiro256 rng(4);
  t.SampleWeightedDistinct(150, rng);

  EXPECT_NEAR(t.TotalWeight(), total_before, 1e-6);
  for (const auto& [v, w] : weights) {
    ASSERT_NEAR(*t.GetWeight(v), w, 1e-9) << v;
  }
  std::string err;
  EXPECT_TRUE(t.CheckInvariants(&err)) << err;
}

TEST(SampleDistinctTest, HeavyNeighborsDrawnFirstMoreOften) {
  // One dominant neighbour: it should appear in nearly every k=1 draw.
  Samtree t(SamtreeConfig{});
  t.Insert(1, 1000.0);
  for (VertexId v = 2; v < 30; ++v) t.Insert(v, 0.01);
  Xoshiro256 rng(5);
  int first_hits = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const auto picks = t.SampleWeightedDistinct(3, rng);
    ASSERT_EQ(picks.size(), 3u);
    first_hits += (picks[0] == 1);
  }
  EXPECT_GT(first_hits, 480);
}

TEST(SampleDistinctTest, EmptyTree) {
  Samtree t;
  Xoshiro256 rng(6);
  EXPECT_TRUE(t.SampleWeightedDistinct(5, rng).empty());
}

TEST(RangeQueryTest, CountsMatchBruteForce) {
  Samtree t(SamtreeConfig{.node_capacity = 8});
  std::vector<VertexId> ids;
  Xoshiro256 gen(7);
  for (int i = 0; i < 400; ++i) {
    const VertexId v = gen.NextUint64(10000);
    if (!t.Contains(v)) ids.push_back(v);
    t.Insert(v, 1.0);
  }
  Xoshiro256 rng(8);
  for (int trial = 0; trial < 100; ++trial) {
    VertexId lo = rng.NextUint64(10000);
    VertexId hi = rng.NextUint64(10000);
    if (lo > hi) std::swap(lo, hi);
    const std::size_t expect = static_cast<std::size_t>(
        std::count_if(ids.begin(), ids.end(),
                      [&](VertexId v) { return v >= lo && v <= hi; }));
    ASSERT_EQ(t.CountInRange(lo, hi), expect)
        << "[" << lo << ", " << hi << "]";
  }
}

TEST(RangeQueryTest, FullAndEmptyRanges) {
  Samtree t(SamtreeConfig{.node_capacity = 4});
  for (VertexId v = 10; v < 60; ++v) t.Insert(v, 1.0);
  EXPECT_EQ(t.CountInRange(0, kInvalidVertex), 50u);
  EXPECT_EQ(t.CountInRange(0, 9), 0u);
  EXPECT_EQ(t.CountInRange(60, 100), 0u);
  EXPECT_EQ(t.CountInRange(20, 20), 1u);
  EXPECT_EQ(t.CountInRange(30, 10), 0u);  // inverted range
}

TEST(RangeQueryTest, NeighborsInRangeReturnsWeights) {
  Samtree t(SamtreeConfig{.node_capacity = 4});
  for (VertexId v = 0; v < 50; ++v) t.Insert(v, static_cast<Weight>(v + 1));
  const auto got = t.NeighborsInRange(10, 14);
  ASSERT_EQ(got.size(), 5u);
  std::map<VertexId, Weight> m(got.begin(), got.end());
  for (VertexId v = 10; v <= 14; ++v) {
    ASSERT_NEAR(m.at(v), static_cast<Weight>(v + 1), 1e-9);
  }
}

TEST(RangeQueryTest, NamespaceFilteringUseCase) {
  // Heterogeneous ID namespaces: range queries slice a neighbourhood by
  // vertex type (all live-rooms vs all tags of one user).
  constexpr VertexId kLiveBase = 0x0002000000000000ULL;
  constexpr VertexId kTagBase = 0x0004000000000000ULL;
  Samtree t(SamtreeConfig{.node_capacity = 8});
  for (VertexId i = 0; i < 30; ++i) t.Insert(kLiveBase + i, 1.0);
  for (VertexId i = 0; i < 7; ++i) t.Insert(kTagBase + i, 1.0);
  EXPECT_EQ(t.CountInRange(kLiveBase, kTagBase - 1), 30u);
  EXPECT_EQ(t.CountInRange(kTagBase, kInvalidVertex), 7u);
}

TEST(TopologyStoreQueryTest, DistinctSamplingAndRangeAndRemoval) {
  TopologyStore store;
  for (VertexId d = 0; d < 64; ++d) store.AddEdge(1, 100 + d, 1.0);
  store.AddEdge(2, 5, 1.0);

  Xoshiro256 rng(9);
  const auto picks = store.SampleNeighborsDistinct(1, 10, rng);
  EXPECT_EQ(picks.size(), 10u);
  EXPECT_EQ(std::set<VertexId>(picks.begin(), picks.end()).size(), 10u);
  EXPECT_TRUE(store.SampleNeighborsDistinct(999, 5, rng).empty());

  EXPECT_EQ(store.CountNeighborsInRange(1, 100, 131), 32u);
  EXPECT_EQ(store.CountNeighborsInRange(42, 0, kInvalidVertex), 0u);

  EXPECT_EQ(store.RemoveSource(1), 64u);
  EXPECT_EQ(store.Degree(1), 0u);
  EXPECT_EQ(store.NumEdges(), 1u);
  EXPECT_EQ(store.RemoveSource(1), 0u);  // already gone
  // Source can come back afterwards.
  store.AddEdge(1, 7, 2.0);
  EXPECT_EQ(store.Degree(1), 1u);
}

class DistinctVsReplacementSweep
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DistinctVsReplacementSweep, DistributionOfFirstDrawMatches) {
  // The *first* draw of a without-replacement sample must follow the
  // plain weighted distribution exactly.
  Samtree t(SamtreeConfig{.node_capacity = GetParam()});
  std::map<VertexId, Weight> weights;
  Weight total = 0.0;
  Xoshiro256 gen(10);
  for (VertexId v = 0; v < 40; ++v) {
    const Weight w = 0.05 + gen.NextDouble();
    t.Insert(v, w);
    weights[v] = w;
    total += w;
  }
  Xoshiro256 rng(11);
  std::map<VertexId, int> hits;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) {
    ++hits[t.SampleWeightedDistinct(1, rng)[0]];
  }
  for (const auto& [v, w] : weights) {
    ASSERT_NEAR(hits[v] / static_cast<double>(draws), w / total, 0.015)
        << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, DistinctVsReplacementSweep,
                         ::testing::Values(4u, 16u, 256u));

}  // namespace
}  // namespace platod2gl
