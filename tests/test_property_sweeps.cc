// Cross-module parameterized property sweeps:
//  * FSTable and CSTable are interchangeable prefix-sum representations —
//    under identical edit scripts they must agree on every prefix at
//    every size;
//  * layer gradient checks across a grid of layer widths (each width is a
//    distinct numerical regime for the hand-derived backward passes);
//  * determinism guarantees (same seed => identical walks/samples);
//  * temporal replay through the latch-free batch updater.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "concurrency/batch_updater.h"
#include "gen/generators.h"
#include "gnn/layers.h"
#include "index/cstable.h"
#include "index/fstable.h"
#include "storage/graph_store.h"
#include "temporal/edge_log.h"
#include "walk/random_walk.h"

namespace platod2gl {
namespace {

// --- FSTable vs CSTable differential ---------------------------------------

class TableEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(TableEquivalence, IdenticalPrefixSumsUnderSharedScript) {
  const auto [n0, seed] = GetParam();
  Xoshiro256 rng(seed);

  std::vector<Weight> init;
  for (std::size_t i = 0; i < n0; ++i) init.push_back(0.05 + rng.NextDouble());
  FSTable fs(init);
  CSTable cs(init);

  for (int step = 0; step < 300; ++step) {
    const double r = rng.NextDouble();
    if (fs.empty() || r < 0.4) {
      const Weight w = 0.05 + rng.NextDouble();
      fs.Append(w);
      cs.Append(w);
    } else if (r < 0.8) {
      const std::size_t i = rng.NextUint64(fs.size());
      const Weight w = 0.05 + rng.NextDouble();
      fs.UpdateWeight(i, w);
      cs.UpdateWeight(i, w);
    } else {
      // FSTable's native delete is swap-with-last; mirror it on the
      // CSTable so both represent the same (reordered) array.
      const std::size_t i = rng.NextUint64(fs.size());
      const Weight last = cs.WeightAt(cs.size() - 1);
      fs.RemoveSwapLast(i);
      if (i != cs.size() - 1) cs.UpdateWeight(i, last);
      cs.Remove(cs.size() - 1);
    }
    ASSERT_EQ(fs.size(), cs.size());
    for (std::size_t i = 0; i < fs.size(); ++i) {
      ASSERT_NEAR(fs.Prefix(i), cs.Prefix(i), 1e-6) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TableEquivalence,
    ::testing::Combine(::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{7}, std::size_t{64},
                                         std::size_t{500}),
                       ::testing::Values(1ull, 99ull)));

// --- gradient checks across layer widths ------------------------------------

class LayerWidthSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(LayerWidthSweep, DenseGradientsMatchNumeric) {
  const auto [in_dim, out_dim] = GetParam();
  Xoshiro256 rng(31 + in_dim * 100 + out_dim);
  Dense fc(in_dim, out_dim, rng);
  Tensor x = Tensor::Glorot(3, in_dim, rng);
  std::vector<std::int64_t> labels;
  for (int i = 0; i < 3; ++i) {
    labels.push_back(static_cast<std::int64_t>(i % out_dim));
  }

  fc.ZeroGrad();
  const SoftmaxCEResult ce = SoftmaxCrossEntropy(fc.Forward(x), labels);
  fc.Backward(x, ce.grad_logits);

  auto loss_fn = [&](const Dense& layer) {
    return SoftmaxCrossEntropy(layer.Forward(x), labels).loss;
  };
  const float eps = 1e-3f;
  // Spot-check a diagonal stripe of the weight matrix.
  for (std::size_t k = 0; k < std::min(in_dim, out_dim); ++k) {
    Dense plus = fc, minus = fc;
    plus.weights()(k, k) += eps;
    minus.weights()(k, k) -= eps;
    const double num = (loss_fn(plus) - loss_fn(minus)) / (2.0 * eps);
    EXPECT_NEAR(fc.weight_grad()(k, k), num, 5e-3)
        << in_dim << "x" << out_dim << " @ " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dims, LayerWidthSweep,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{16}, std::size_t{64}),
                       ::testing::Values(std::size_t{2}, std::size_t{8},
                                         std::size_t{32})));

// --- determinism -------------------------------------------------------------

TEST(DeterminismTest, WalksReproduceUnderSameSeed) {
  GraphStore g;
  Xoshiro256 gen(7);
  for (int i = 0; i < 2000; ++i) {
    g.AddEdge({gen.NextUint64(200), gen.NextUint64(200),
               0.1 + gen.NextDouble(), 0});
  }
  RandomWalker walker(&g);
  std::vector<VertexId> seeds;
  for (VertexId v = 0; v < 50; ++v) seeds.push_back(v);

  Xoshiro256 a(42), b(42);
  const WalkBatch w1 =
      walker.Walk(seeds, {.walk_length = 10, .p = 0.5, .q = 2.0}, a);
  const WalkBatch w2 =
      walker.Walk(seeds, {.walk_length = 10, .p = 0.5, .q = 2.0}, b);
  EXPECT_EQ(w1, w2);
}

TEST(DeterminismTest, SamtreeSamplingReproducesUnderSameSeed) {
  Samtree t(SamtreeConfig{.node_capacity = 8});
  Xoshiro256 gen(8);
  for (int i = 0; i < 1000; ++i) {
    t.Insert(gen.NextUint64(5000), 0.1 + gen.NextDouble());
  }
  Xoshiro256 a(9), b(9);
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(t.SampleWeighted(a), t.SampleWeighted(b));
  }
}

// --- temporal replay through the concurrent updater --------------------------

TEST(TemporalConcurrencyTest, WindowReplayViaLatchFreeBatches) {
  // Build the log.
  TemporalEdgeLog log;
  Xoshiro256 gen(11);
  UniformParams up;
  up.num_vertices = 300;
  up.num_edges = 3000;
  auto base = GenerateUniform(up);
  DedupEdges(&base);
  std::uint64_t t = 0;
  for (const Edge& e : base) log.AppendInsert(++t, e);
  UpdateStreamParams sp;
  sp.num_ops = 2000;
  for (const EdgeUpdate& u : MakeUpdateStream(base, sp)) log.Append(++t, u);

  // Sequential reference.
  GraphStore reference;
  log.SnapshotInto(&reference, t);

  // Concurrent: pull the log in windows and apply each window as a
  // latch-free batch.
  GraphStore concurrent;
  ThreadPool pool(4);
  BatchUpdater updater(&concurrent.topology(0), &pool);
  const std::uint64_t window = t / 7 + 1;
  for (std::uint64_t from = 0; from < t; from += window) {
    std::vector<EdgeUpdate> batch;
    for (const TimedUpdate& tu :
         log.Window(from, std::min(t, from + window))) {
      batch.push_back(tu.update);
    }
    updater.ApplyBatch(std::move(batch));
  }

  EXPECT_EQ(concurrent.NumEdges(), reference.NumEdges());
  std::string err;
  EXPECT_TRUE(concurrent.topology(0).CheckAllInvariants(&err)) << err;
  reference.topology(0).ForEachSource([&](VertexId s, const Samtree& tree) {
    tree.ForEachNeighbor([&](VertexId d, Weight w) {
      const auto got = concurrent.EdgeWeight(s, d);
      ASSERT_TRUE(got.has_value()) << s << "->" << d;
      ASSERT_NEAR(*got, w, 1e-9) << s << "->" << d;
    });
  });
}

}  // namespace
}  // namespace platod2gl
