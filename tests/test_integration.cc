// Integration tests: the full PlatoD2GL pipeline — dataset generation,
// concurrent batched graph building, sampling operators, distributed
// simulation and GNN training — wired together as a production deployment
// would be (paper Figures 1-2).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "concurrency/batch_updater.h"
#include "dist/cluster.h"
#include "gen/datasets.h"
#include "gen/generators.h"
#include "gnn/model.h"
#include "gnn/trainer.h"
#include "sampling/neighbor_sampler.h"
#include "sampling/subgraph_sampler.h"
#include "storage/graph_store.h"

namespace platod2gl {
namespace {

TEST(IntegrationTest, BuildSampleTrainOnSyntheticGraph) {
  // 1. Build a skewed graph through the concurrent batch path.
  RmatParams p;
  p.scale = 12;
  p.num_edges = 60000;
  std::vector<Edge> edges = GenerateRmat(p);
  MakeBidirected(&edges);

  GraphStore graph;
  ThreadPool pool(4);
  BatchUpdater updater(&graph.topology(0), &pool);
  std::vector<EdgeUpdate> batch;
  for (const Edge& e : edges) batch.push_back({UpdateKind::kInsert, e});
  updater.ApplyBatch(batch);
  EXPECT_GT(graph.NumEdges(), 50000u);

  // 2. Attach features/labels and train a model end-to-end.
  Xoshiro256 rng(1);
  std::vector<VertexId> vertices;
  graph.topology(0).ForEachSource(
      [&](VertexId v, const Samtree&) { vertices.push_back(v); });
  for (VertexId v : vertices) {
    std::vector<float> f(8, 0.0f);
    f[v % 8] = 1.0f;
    graph.attributes().SetFeatures(v, std::move(f));
    graph.attributes().SetLabel(v, static_cast<std::int64_t>(v % 4));
  }

  GraphSageModel model(
      GraphSageConfig{.in_dim = 8, .hidden_dim = 16, .num_classes = 4}, 2);
  Trainer trainer(&graph, &model, TrainerConfig{.batch_size = 64,
                                                .learning_rate = 0.01f});
  for (int step = 0; step < 10; ++step) {
    const auto r = trainer.TrainStepSampled(rng);
    ASSERT_TRUE(std::isfinite(r.loss)) << "step " << step;
  }
}

TEST(IntegrationTest, DynamicUpdatesVisibleToSampling) {
  GraphStore graph;
  graph.AddEdge({1, 100, 1.0, 0});
  NeighborSampler sampler(&graph);
  Xoshiro256 rng(2);

  NeighborBatch b1 = sampler.Sample({1}, {.fanout = 20}, rng);
  for (VertexId v : b1.neighbors) EXPECT_EQ(v, 100u);

  // A heavy new edge dominates subsequent samples instantly — the
  // freshness property a dynamic store exists for.
  graph.AddEdge({1, 200, 1000.0, 0});
  NeighborBatch b2 = sampler.Sample({1}, {.fanout = 2000}, rng);
  int fresh = 0;
  for (VertexId v : b2.neighbors) fresh += (v == 200);
  EXPECT_GT(fresh, 1800);

  // Deleting it removes it from the distribution entirely.
  graph.topology(0).RemoveEdge(1, 200);
  NeighborBatch b3 = sampler.Sample({1}, {.fanout = 100}, rng);
  for (VertexId v : b3.neighbors) EXPECT_EQ(v, 100u);
}

TEST(IntegrationTest, HeterogeneousWeChatMiniPipeline) {
  const Dataset ds = MakeWeChatMini();
  GraphStore graph(GraphStoreConfig{.num_relations = ds.num_relations});
  // Build only a slice to keep this test fast.
  const std::size_t slice = std::min<std::size_t>(ds.edges.size(), 200000);
  for (std::size_t i = 0; i < slice; ++i) graph.AddEdge(ds.edges[i]);
  EXPECT_GT(graph.NumEdges(), 0u);

  // Meta-path User-Live -> Live-Live across relations.
  std::vector<VertexId> users;
  graph.topology(kUserLive).ForEachSource([&](VertexId v, const Samtree& t) {
    if (users.size() < 32 && !t.empty()) users.push_back(v);
  });
  ASSERT_FALSE(users.empty());
  SubgraphSampler sampler(&graph);
  Xoshiro256 rng(3);
  const SampledSubgraph sg = sampler.Sample(
      users,
      {{.fanout = 5, .edge_type = kUserLive},
       {.fanout = 3, .edge_type = kLiveLive}},
      rng);
  EXPECT_EQ(sg.layers.size(), 3u);
  EXPECT_GT(sg.layers[1].size(), 0u);
}

TEST(IntegrationTest, ClusterEndToEndWithUpdateStream) {
  // Distributed build + dynamic update stream + sampling, on 4 shards.
  UniformParams up;
  up.num_vertices = 2000;
  up.num_edges = 30000;
  const std::vector<Edge> base = GenerateUniform(up);

  GraphCluster cluster(ClusterConfig{.num_shards = 4});
  std::vector<EdgeUpdate> build;
  for (const Edge& e : base) build.push_back({UpdateKind::kInsert, e});
  cluster.ApplyBatch(build);
  const std::size_t built = cluster.NumEdges();
  EXPECT_GT(built, 25000u);

  UpdateStreamParams sp;
  sp.num_ops = 5000;
  sp.insert_fraction = 0.5;
  sp.update_fraction = 0.3;
  cluster.ApplyBatch(MakeUpdateStream(base, sp));

  std::vector<VertexId> seeds;
  for (VertexId v = 0; v < 100; ++v) seeds.push_back(v);
  const NeighborBatch nb = cluster.SampleNeighbors(seeds, 10, true, 4);
  EXPECT_EQ(nb.NumSeeds(), 100u);
  EXPECT_LT(cluster.LoadImbalance(), 1.5);
}

TEST(IntegrationTest, SamtreeInvariantsSurviveFullDatasetBuild) {
  // Build ogbn-mini's first 300k edges with small-capacity trees and
  // verify every tree's invariants — the heaviest structural shakedown.
  Dataset ds = MakeOgbnMini();
  GraphStoreConfig cfg;
  cfg.samtree.node_capacity = 16;
  GraphStore graph(cfg);
  const std::size_t slice = std::min<std::size_t>(ds.edges.size(), 300000);
  for (std::size_t i = 0; i < slice; ++i) graph.AddEdge(ds.edges[i]);

  std::string err;
  std::size_t trees = 0;
  graph.topology(0).ForEachSource(
      [&](VertexId, const Samtree&) { ++trees; });
  EXPECT_GT(trees, 1000u);
  EXPECT_TRUE(graph.topology(0).CheckAllInvariants(&err)) << err;
}

}  // namespace
}  // namespace platod2gl
