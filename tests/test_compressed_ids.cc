// CP-IDs compression tests (paper Section VI-A and Figure 7).
#include "core/compressed_ids.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace platod2gl {
namespace {

TEST(CompressedIdsTest, EmptyList) {
  CompressedIdList l;
  EXPECT_TRUE(l.empty());
  EXPECT_EQ(l.size(), 0u);
  EXPECT_EQ(l.Find(42), CompressedIdList::npos);
}

TEST(CompressedIdsTest, AppendAndGetRoundTrip) {
  CompressedIdList l;
  const std::vector<VertexId> ids = {16, 129, 43, 90};  // Figure 7's IDs
  for (VertexId v : ids) l.Append(v);
  ASSERT_EQ(l.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(l.Get(i), ids[i]);
  }
}

TEST(CompressedIdsTest, PaperFigure7PrefixSevenBytes) {
  // IDs 0x10, 0x81, 0x2b, 0x5a share their first 7 bytes (all zero):
  // the paper's example compresses with z = 7.
  CompressedIdList l;
  for (VertexId v : {0x10ULL, 0x81ULL, 0x2bULL, 0x5aULL}) l.Append(v);
  EXPECT_EQ(l.prefix_bytes(), 7);
  // 4 one-byte suffixes instead of 32 bytes of raw IDs.
  EXPECT_LT(l.MemoryUsage(), 4 * sizeof(VertexId));
}

TEST(CompressedIdsTest, PrefixShrinksWhenNeeded) {
  CompressedIdList l;
  l.Append(0x0000000000000001ULL);
  EXPECT_EQ(l.prefix_bytes(), 7);
  l.Append(0x0000000000000101ULL);  // differs in byte 6 -> z snaps to 6
  EXPECT_EQ(l.prefix_bytes(), 6);
  l.Append(0x0000000001000003ULL);  // differs in byte 4 -> z snaps to 4
  EXPECT_EQ(l.prefix_bytes(), 4);
  l.Append(0x0100000000000004ULL);  // differs in byte 0 -> z snaps to 0
  EXPECT_EQ(l.prefix_bytes(), 0);
  EXPECT_EQ(l.Get(0), 0x0000000000000001ULL);
  EXPECT_EQ(l.Get(1), 0x0000000000000101ULL);
  EXPECT_EQ(l.Get(2), 0x0000000001000003ULL);
  EXPECT_EQ(l.Get(3), 0x0100000000000004ULL);
}

TEST(CompressedIdsTest, AllowedPrefixLengthsOnly) {
  // z must come from {0, 4, 6, 7} (paper: "m is chosen from {0,4,6,7}").
  CompressedIdList l;
  l.Append(0x0000000000AA0001ULL);
  l.Append(0x0000000000BB0002ULL);  // shares 5 leading bytes -> snap to 4
  EXPECT_EQ(l.prefix_bytes(), 4);
}

TEST(CompressedIdsTest, DisabledCompressionStoresFullWidth) {
  CompressedIdList l(/*enable_compression=*/false);
  for (VertexId v : {1ULL, 2ULL, 3ULL}) l.Append(v);
  EXPECT_EQ(l.prefix_bytes(), 0);
  EXPECT_GE(l.MemoryUsage(), 3 * sizeof(VertexId));
  EXPECT_EQ(l.Get(2), 3ULL);
}

TEST(CompressedIdsTest, FindLocatesAndRejects) {
  CompressedIdList l;
  for (VertexId v : {100ULL, 200ULL, 300ULL}) l.Append(v);
  EXPECT_EQ(l.Find(100), 0u);
  EXPECT_EQ(l.Find(300), 2u);
  EXPECT_EQ(l.Find(150), CompressedIdList::npos);
  // Prefix fast-reject path: far-away ID.
  EXPECT_EQ(l.Find(0xFFFFFFFFFFFFFFFEULL), CompressedIdList::npos);
}

TEST(CompressedIdsTest, InsertKeepsOrder) {
  CompressedIdList l;
  l.Append(10);
  l.Append(30);
  l.Insert(1, 20);
  ASSERT_EQ(l.size(), 3u);
  EXPECT_EQ(l.Get(0), 10u);
  EXPECT_EQ(l.Get(1), 20u);
  EXPECT_EQ(l.Get(2), 30u);
}

TEST(CompressedIdsTest, InsertAtFrontAndBack) {
  CompressedIdList l;
  l.Append(20);
  l.Insert(0, 10);
  l.Insert(2, 30);
  EXPECT_EQ(l.Decode(), (std::vector<VertexId>{10, 20, 30}));
}

TEST(CompressedIdsTest, InsertTriggeringRecompression) {
  CompressedIdList l;
  l.Append(0x0000000000000010ULL);
  l.Insert(0, 0x00000000010000FFULL);  // shares 4 bytes -> z snaps to 4
  EXPECT_EQ(l.prefix_bytes(), 4);
  EXPECT_EQ(l.Get(0), 0x00000000010000FFULL);
  EXPECT_EQ(l.Get(1), 0x0000000000000010ULL);
}

TEST(CompressedIdsTest, RemoveAtShifts) {
  CompressedIdList l;
  for (VertexId v : {1ULL, 2ULL, 3ULL, 4ULL}) l.Append(v);
  l.RemoveAt(1);
  EXPECT_EQ(l.Decode(), (std::vector<VertexId>{1, 3, 4}));
}

TEST(CompressedIdsTest, RemoveSwapLastMirrorsFSTable) {
  CompressedIdList l;
  for (VertexId v : {1ULL, 2ULL, 3ULL, 4ULL}) l.Append(v);
  l.RemoveSwapLast(0);
  EXPECT_EQ(l.Decode(), (std::vector<VertexId>{4, 2, 3}));
  l.RemoveSwapLast(2);  // remove the (current) last element
  EXPECT_EQ(l.Decode(), (std::vector<VertexId>{4, 2}));
}

TEST(CompressedIdsTest, SetOverwrites) {
  CompressedIdList l;
  for (VertexId v : {5ULL, 6ULL}) l.Append(v);
  l.Set(0, 7);
  EXPECT_EQ(l.Get(0), 7u);
  EXPECT_EQ(l.Get(1), 6u);
}

TEST(CompressedIdsTest, CompressionSavesMemoryOnClusteredIds) {
  CompressedIdList compressed(true);
  CompressedIdList raw(false);
  constexpr VertexId kBase = 0x0001000200000000ULL;
  for (VertexId i = 0; i < 256; ++i) {
    // IDs differ only in the last byte: the full 7-byte prefix is shared.
    compressed.Append(kBase + i);
    raw.Append(kBase + i);
  }
  EXPECT_EQ(compressed.prefix_bytes(), 7);
  EXPECT_LT(compressed.MemoryUsage(), raw.MemoryUsage() * 6 / 10)
      << "1-byte suffixes should save ~85%";
  for (VertexId i = 0; i < 256; ++i) {
    ASSERT_EQ(compressed.Get(i), kBase + i);
  }
}

// Property sweep: compressed list behaves exactly like a vector<VertexId>
// under a random edit script, for several ID-locality regimes.
struct IdRegime {
  const char* name;
  VertexId base;
  VertexId spread;
};

class CompressedIdsRandomized
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(CompressedIdsRandomized, MatchesShadowVector) {
  static constexpr IdRegime kRegimes[] = {
      {"tiny", 0, 1 << 8},
      {"clustered", 0x00AA00BB00000000ULL, 1 << 20},
      {"wild", 0, ~0ULL >> 1},
  };
  const auto [seed, regime_idx] = GetParam();
  const IdRegime& regime = kRegimes[regime_idx];
  Xoshiro256 rng(seed);
  CompressedIdList l;
  std::vector<VertexId> shadow;
  for (int step = 0; step < 600; ++step) {
    const double r = rng.NextDouble();
    const VertexId fresh = regime.base + rng.NextUint64(regime.spread);
    if (shadow.empty() || r < 0.5) {
      l.Append(fresh);
      shadow.push_back(fresh);
    } else if (r < 0.7) {
      const std::size_t pos = rng.NextUint64(shadow.size() + 1);
      l.Insert(pos, fresh);
      shadow.insert(shadow.begin() + static_cast<std::ptrdiff_t>(pos), fresh);
    } else if (r < 0.85) {
      const std::size_t pos = rng.NextUint64(shadow.size());
      l.RemoveSwapLast(pos);
      shadow[pos] = shadow.back();
      shadow.pop_back();
    } else {
      const std::size_t pos = rng.NextUint64(shadow.size());
      l.Set(pos, fresh);
      shadow[pos] = fresh;
    }
    ASSERT_EQ(l.Decode(), shadow) << regime.name << " step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompressedIdsRandomized,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace platod2gl
