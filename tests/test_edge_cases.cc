// Cross-cutting edge-case tests: API misuse surfaces, boundary inputs and
// behaviours that individual module suites do not pin down.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/random.h"
#include "core/compressed_ids.h"
#include "index/fstable.h"
#include "storage/cuckoo_map.h"
#include "storage/graph_store.h"

namespace platod2gl {
namespace {

TEST(EdgeCaseTest, GraphStoreRejectsUnknownRelation) {
  GraphStore g(GraphStoreConfig{.num_relations = 2});
  EXPECT_THROW(g.AddEdge({1, 2, 1.0, /*type=*/5}), std::out_of_range);
  EXPECT_THROW(g.Degree(1, 5), std::out_of_range);
  // Valid relations unaffected.
  g.AddEdge({1, 2, 1.0, 1});
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(EdgeCaseTest, GraphStoreRelationCountClampedToOne) {
  GraphStore g(GraphStoreConfig{.num_relations = 0});
  g.AddEdge({1, 2, 1.0, 0});  // relation 0 must exist
  EXPECT_EQ(g.num_relations(), 1u);
}

TEST(EdgeCaseTest, CuckooMapEraseReinsertCycles) {
  CuckooMap<int> map(2, 2);
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (VertexId k = 1; k <= 64; ++k) {
      map.With(k, [cycle](int& v) { v = cycle; });
    }
    for (VertexId k = 1; k <= 64; k += 2) {
      ASSERT_TRUE(map.Erase(k));
    }
    EXPECT_EQ(map.Size(), 32u);
    for (VertexId k = 2; k <= 64; k += 2) {
      ASSERT_NE(map.FindUnsafe(k), nullptr);
      ASSERT_EQ(*map.FindUnsafe(k), cycle);
    }
    for (VertexId k = 1; k <= 64; k += 2) map.With(k, [](int&) {});
  }
  EXPECT_EQ(map.Size(), 64u);
}

TEST(EdgeCaseTest, CuckooMapSequentialKeysDense) {
  // Sequential IDs are the common production pattern and the classic way
  // to stress a weak hash.
  CuckooMap<std::uint64_t> map(4, 4);
  for (VertexId k = 1; k <= 50000; ++k) {
    map.With(k, [k](std::uint64_t& v) { v = k; });
  }
  EXPECT_EQ(map.Size(), 50000u);
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const VertexId k = rng.NextUint64(50000) + 1;
    ASSERT_NE(map.FindUnsafe(k), nullptr) << k;
  }
}

TEST(EdgeCaseTest, FSTableHandlesWideWeightRange) {
  // A 12-orders-of-magnitude spread that still fits double precision
  // (1e9 + 1e-3 is exactly representable; 1e12 + 1e-12 would absorb).
  FSTable f({1e-3, 1e9, 1e-3});
  EXPECT_NEAR(f.TotalWeight(), 1e9, 1.0);
  Xoshiro256 rng(2);
  // The huge entry dominates absolutely.
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(f.Sample(rng), 1u);
  // Updating it away shifts the distribution to the survivors.
  f.UpdateWeight(1, 1e-3);
  int ones = 0;
  for (int i = 0; i < 3000; ++i) ones += (f.Sample(rng) == 1u);
  EXPECT_NEAR(ones / 3000.0, 1.0 / 3.0, 0.05);
}

TEST(EdgeCaseTest, FSTableNegativeDeltaKeepsConsistency) {
  FSTable f({5.0, 5.0, 5.0});
  f.AddDelta(1, -4.0);  // decay, not removal
  EXPECT_NEAR(f.WeightAt(1), 1.0, 1e-12);
  EXPECT_NEAR(f.TotalWeight(), 11.0, 1e-12);
  EXPECT_NEAR(f.Prefix(1), 6.0, 1e-12);
}

TEST(EdgeCaseTest, CompressedIdsExtremeValues) {
  CompressedIdList l;
  l.Append(0);
  l.Append(~0ULL);             // forces z = 0
  l.Append(0x8000000000000000ULL);
  EXPECT_EQ(l.prefix_bytes(), 0);
  EXPECT_EQ(l.Get(0), 0ULL);
  EXPECT_EQ(l.Get(1), ~0ULL);
  EXPECT_EQ(l.Get(2), 0x8000000000000000ULL);
  EXPECT_EQ(l.Find(~0ULL), 1u);
}

TEST(EdgeCaseTest, SamtreeCapacityClampedToFour) {
  // Degenerate capacities are clamped rather than honoured.
  Samtree t(SamtreeConfig{.node_capacity = 1});
  for (VertexId v = 0; v < 50; ++v) t.Insert(v, 1.0);
  EXPECT_EQ(t.size(), 50u);
  std::string err;
  EXPECT_TRUE(t.CheckInvariants(&err)) << err;
}

TEST(EdgeCaseTest, SamtreeZeroWeightEdgesAreStoredButNotSampled) {
  Samtree t(SamtreeConfig{});
  t.Insert(1, 0.0);
  t.Insert(2, 1.0);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.Contains(1));
  Xoshiro256 rng(3);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(t.SampleWeighted(rng), 2u);
  // Uniform sampling still sees it.
  int ones = 0;
  for (int i = 0; i < 2000; ++i) ones += (t.SampleUniform(rng) == 1u);
  EXPECT_NEAR(ones / 2000.0, 0.5, 0.05);
}

TEST(EdgeCaseTest, SamtreeMaxVertexIdRoundTrips) {
  // kInvalidVertex is reserved; the largest legal ID is max-1.
  Samtree t(SamtreeConfig{.node_capacity = 4});
  const VertexId huge = kInvalidVertex - 1;
  t.Insert(huge, 2.0);
  for (VertexId v = 0; v < 20; ++v) t.Insert(v, 1.0);
  EXPECT_TRUE(t.Contains(huge));
  EXPECT_NEAR(*t.GetWeight(huge), 2.0, 1e-12);
  EXPECT_EQ(t.CountInRange(huge, kInvalidVertex), 1u);
  std::string err;
  EXPECT_TRUE(t.CheckInvariants(&err)) << err;
}

}  // namespace
}  // namespace platod2gl
