// Wire-format codec tests: round-trips, format pinning and corruption
// rejection, plus the cluster's byte accounting matching the codec.
#include "dist/wire.h"

#include <gtest/gtest.h>

#include <vector>

#include "dist/cluster.h"

namespace platod2gl {
namespace {

TEST(WireTest, SampleRequestRoundTrip) {
  wire::SampleRequest req;
  req.edge_type = 3;
  req.fanout = 25;
  req.weighted = false;
  req.seeds = {1, 0xFFFFFFFFFFFFFFFEULL, 42};

  const std::string bytes = wire::EncodeSampleRequest(req);
  // Pinned layout: 1 tag + 4 type + 4 fanout + 1 weighted + 4 count +
  // 3 * 8 seeds.
  EXPECT_EQ(bytes.size(), 14u + 3 * 8u);
  EXPECT_EQ(bytes[0], 'S');

  wire::SampleRequest decoded;
  ASSERT_TRUE(wire::DecodeSampleRequest(bytes, &decoded));
  EXPECT_EQ(decoded, req);
}

TEST(WireTest, SampleResponseRoundTrip) {
  NeighborBatch batch;
  batch.neighbors = {10, 20, 30, 40};
  batch.offsets = {0, 2, 2, 4};  // middle seed empty

  const std::string bytes = wire::EncodeSampleResponse(batch);
  EXPECT_EQ(bytes[0], 'R');
  NeighborBatch decoded;
  ASSERT_TRUE(wire::DecodeSampleResponse(bytes, &decoded));
  EXPECT_EQ(decoded.neighbors, batch.neighbors);
  EXPECT_EQ(decoded.offsets, batch.offsets);
}

TEST(WireTest, UpdateBatchRoundTrip) {
  std::vector<EdgeUpdate> batch = {
      {UpdateKind::kInsert, Edge{1, 2, 0.5, 0}},
      {UpdateKind::kInPlaceUpdate, Edge{3, 4, 2.5, 1}},
      {UpdateKind::kDelete, Edge{5, 6, 0.0, 2}},
  };
  const std::string bytes = wire::EncodeUpdateBatch(batch);
  EXPECT_EQ(bytes.size(), 5u + 3 * 29u) << "pinned 29-byte update records";

  std::vector<EdgeUpdate> decoded;
  ASSERT_TRUE(wire::DecodeUpdateBatch(bytes, &decoded));
  ASSERT_EQ(decoded.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded[i].kind, batch[i].kind) << i;
    EXPECT_EQ(decoded[i].edge, batch[i].edge) << i;
  }
}

TEST(WireTest, EmptyMessages) {
  wire::SampleRequest req;
  wire::SampleRequest decoded;
  ASSERT_TRUE(
      wire::DecodeSampleRequest(wire::EncodeSampleRequest(req), &decoded));
  EXPECT_TRUE(decoded.seeds.empty());

  std::vector<EdgeUpdate> batch, out;
  ASSERT_TRUE(
      wire::DecodeUpdateBatch(wire::EncodeUpdateBatch(batch), &out));
  EXPECT_TRUE(out.empty());
}

TEST(WireTest, CorruptionRejected) {
  wire::SampleRequest req;
  req.seeds = {1, 2, 3};
  std::string bytes = wire::EncodeSampleRequest(req);

  wire::SampleRequest sink;
  // Wrong tag.
  std::string wrong = bytes;
  wrong[0] = 'U';
  EXPECT_FALSE(wire::DecodeSampleRequest(wrong, &sink));
  // Truncated.
  EXPECT_FALSE(
      wire::DecodeSampleRequest(bytes.substr(0, bytes.size() - 3), &sink));
  // Trailing garbage.
  EXPECT_FALSE(wire::DecodeSampleRequest(bytes + "x", &sink));
  // Empty.
  EXPECT_FALSE(wire::DecodeSampleRequest("", &sink));

  std::vector<EdgeUpdate> batch_sink;
  std::string upd = wire::EncodeUpdateBatch(
      {{UpdateKind::kInsert, Edge{1, 2, 1.0, 0}}});
  upd[5] = 9;  // invalid UpdateKind
  EXPECT_FALSE(wire::DecodeUpdateBatch(upd, &batch_sink));
}

TEST(WireTest, ClusterByteAccountingMatchesCodec) {
  GraphCluster cluster(ClusterConfig{.num_shards = 2});
  std::vector<EdgeUpdate> batch;
  for (VertexId s = 1; s <= 100; ++s) {
    batch.push_back({UpdateKind::kInsert, Edge{s, s + 1000, 1.0, 0}});
  }
  cluster.ApplyBatch(batch);

  // Reconstruct what the codec would have shipped per shard.
  std::uint64_t expect_sent = 0;
  std::vector<std::vector<EdgeUpdate>> groups(2);
  for (const EdgeUpdate& u : batch) {
    groups[cluster.partitioner().ShardOf(u.edge.src)].push_back(u);
  }
  for (const auto& g : groups) {
    if (!g.empty()) expect_sent += wire::EncodeUpdateBatch(g).size();
  }
  EXPECT_EQ(cluster.stats().bytes_sent, expect_sent);

  // Sampling responses ship the neighbour payload back.
  const auto before = cluster.stats().bytes_received;
  cluster.SampleNeighbors({1, 2, 3}, 4, true, 9);
  EXPECT_GT(cluster.stats().bytes_received, before + 3 * 4u);
}

}  // namespace
}  // namespace platod2gl
