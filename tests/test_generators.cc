// Generator and dataset-preset tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "gen/datasets.h"
#include "gen/generators.h"

namespace platod2gl {
namespace {

TEST(GeneratorsTest, RmatDeterministicAndInRange) {
  RmatParams p;
  p.scale = 10;
  p.num_edges = 5000;
  const auto a = GenerateRmat(p);
  const auto b = GenerateRmat(p);
  ASSERT_EQ(a.size(), 5000u);
  EXPECT_EQ(a, b) << "same seed must reproduce the same stream";
  for (const Edge& e : a) {
    EXPECT_LT(e.src, 1u << 10);
    EXPECT_LT(e.dst, 1u << 10);
    EXPECT_GT(e.weight, 0.0);
  }
}

TEST(GeneratorsTest, RmatIsSkewed) {
  RmatParams p;
  p.scale = 12;
  p.num_edges = 50000;
  const auto edges = GenerateRmat(p);
  std::map<VertexId, int> out_deg;
  for (const Edge& e : edges) ++out_deg[e.src];
  int max_deg = 0;
  for (const auto& [v, d] : out_deg) max_deg = std::max(max_deg, d);
  const double avg =
      static_cast<double>(edges.size()) / static_cast<double>(out_deg.size());
  EXPECT_GT(max_deg, avg * 10) << "R-MAT must produce heavy hitters";
}

TEST(GeneratorsTest, RmatRespectsBaseOffset) {
  RmatParams p;
  p.scale = 8;
  p.num_edges = 100;
  p.base = 1ULL << 40;
  for (const Edge& e : GenerateRmat(p)) {
    EXPECT_GE(e.src, 1ULL << 40);
    EXPECT_GE(e.dst, 1ULL << 40);
  }
}

TEST(GeneratorsTest, BipartiteKeepsNamespacesDisjoint) {
  BipartiteParams p;
  p.num_sources = 100;
  p.num_targets = 50;
  p.num_edges = 2000;
  p.source_base = 0;
  p.target_base = 1ULL << 32;
  for (const Edge& e : GenerateBipartite(p)) {
    EXPECT_LT(e.src, 100u);
    EXPECT_GE(e.dst, 1ULL << 32);
    EXPECT_LT(e.dst, (1ULL << 32) + 50);
  }
}

TEST(GeneratorsTest, BipartiteZipfSkewsItemPopularity) {
  BipartiteParams p;
  p.num_sources = 1000;
  p.num_targets = 1000;
  p.num_edges = 50000;
  p.zipf_exponent = 1.0;
  std::map<VertexId, int> pop;
  for (const Edge& e : GenerateBipartite(p)) ++pop[e.dst];
  // The most popular item must dwarf the median.
  std::vector<int> counts;
  for (const auto& [v, c] : pop) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());
  EXPECT_GT(counts.front(), counts[counts.size() / 2] * 20);
}

TEST(GeneratorsTest, ZipfSamplerFavorsLowRanks) {
  ZipfSampler z(100, 1.2);
  Xoshiro256 rng(3);
  int first = 0, tail = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::size_t k = z.Sample(rng);
    ASSERT_LT(k, 100u);
    first += (k == 0);
    tail += (k >= 90);
  }
  EXPECT_GT(first, tail);
}

TEST(GeneratorsTest, MakeBidirectedMirrors) {
  std::vector<Edge> edges = {{1, 2, 0.5, 3}};
  MakeBidirected(&edges);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[1].src, 2u);
  EXPECT_EQ(edges[1].dst, 1u);
  EXPECT_EQ(edges[1].weight, 0.5);
  EXPECT_EQ(edges[1].type, 3u);
}

TEST(GeneratorsTest, UpdateStreamFractionsRoughlyHold) {
  UniformParams up;
  up.num_vertices = 500;
  up.num_edges = 5000;
  const auto base = GenerateUniform(up);
  UpdateStreamParams sp;
  sp.num_ops = 10000;
  sp.insert_fraction = 0.5;
  sp.update_fraction = 0.3;
  const auto ops = MakeUpdateStream(base, sp);
  ASSERT_EQ(ops.size(), 10000u);
  int ins = 0, upd = 0, del = 0;
  for (const auto& u : ops) {
    switch (u.kind) {
      case UpdateKind::kInsert: ++ins; break;
      case UpdateKind::kInPlaceUpdate: ++upd; break;
      case UpdateKind::kDelete: ++del; break;
    }
  }
  EXPECT_NEAR(ins / 10000.0, 0.5, 0.03);
  EXPECT_NEAR(upd / 10000.0, 0.3, 0.03);
  EXPECT_NEAR(del / 10000.0, 0.2, 0.03);
}

TEST(GeneratorsTest, UpdateStreamInsertsAreFreshEdges) {
  UniformParams up;
  up.num_vertices = 100;
  up.num_edges = 500;
  const auto base = GenerateUniform(up);
  std::set<VertexId> base_vertices;
  for (const Edge& e : base) {
    base_vertices.insert(e.src);
    base_vertices.insert(e.dst);
  }
  UpdateStreamParams sp;
  sp.num_ops = 1000;
  for (const auto& u : MakeUpdateStream(base, sp)) {
    if (u.kind == UpdateKind::kInsert) {
      EXPECT_FALSE(base_vertices.count(u.edge.dst))
          << "insert destinations must be brand new";
    } else {
      EXPECT_TRUE(base_vertices.count(u.edge.dst))
          << "updates/deletes must target existing edges";
    }
  }
}

TEST(DatasetsTest, PresetsHaveExpectedShape) {
  const Dataset ogbn = MakeOgbnMini();
  EXPECT_EQ(ogbn.name, "ogbn-mini");
  EXPECT_GT(ogbn.edges.size(), 100000u);
  EXPECT_EQ(ogbn.num_relations, 1u);

  const Dataset wechat = MakeWeChatMini();
  EXPECT_EQ(wechat.num_relations, 4u);
  std::set<EdgeType> types;
  for (const Edge& e : wechat.edges) types.insert(e.type);
  EXPECT_EQ(types.size(), 4u);
}

TEST(DatasetsTest, RedditDenserThanOgbn) {
  const Dataset ogbn = MakeOgbnMini();
  const Dataset reddit = MakeRedditMini();
  std::set<VertexId> ogbn_v, reddit_v;
  for (const Edge& e : ogbn.edges) ogbn_v.insert(e.src);
  for (const Edge& e : reddit.edges) reddit_v.insert(e.src);
  const double ogbn_density =
      static_cast<double>(ogbn.edges.size()) / ogbn_v.size();
  const double reddit_density =
      static_cast<double>(reddit.edges.size()) / reddit_v.size();
  EXPECT_GT(reddit_density, ogbn_density * 3)
      << "Reddit's defining property is its density (Table III)";
}

TEST(DatasetsTest, PresetsAreBidirectedAndDeduplicated) {
  const Dataset ds = MakeOgbnMini();
  std::set<std::pair<VertexId, VertexId>> pairs;
  for (const Edge& e : ds.edges) {
    EXPECT_TRUE(pairs.insert({e.src, e.dst}).second)
        << "duplicate edge " << e.src << "->" << e.dst;
  }
  // Bi-directed: every pair's mirror is present too.
  for (const Edge& e : ds.edges) {
    EXPECT_TRUE(pairs.count({e.dst, e.src}))
        << "missing mirror of " << e.src << "->" << e.dst;
  }
}

}  // namespace
}  // namespace platod2gl
