// Request tracing tests (DESIGN.md §15, docs/observability.md): trace-id
// derivation purity, the bounded span builder and completed-trace ring,
// and the serving-layer determinism contracts — a batched execution emits
// the SAME span tree as the solo execution of the same request, a shed
// request never leaks an open span, and a fault-injected SLO violation
// window carries an exemplar trace spanning serve -> cluster -> shard.
// Labels: obs;serve.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "dist/cluster.h"
#include "obs/trace.h"
#include "pipeline/epoch_coordinator.h"
#include "serve/query_plan.h"
#include "serve/server.h"

namespace platod2gl {
namespace {

using obs::DeriveTraceId;
using obs::kNoParentSpan;
using obs::Span;
using obs::SpanKind;
using obs::Trace;
using obs::TraceBuilder;
using obs::TraceContext;
using obs::TraceSink;
using serve::GraphServer;
using serve::QueryRequest;
using serve::QueryResponse;
using serve::RequestStatus;
using serve::ServeConfig;
using serve::SloReport;

// ---------------------------------------------------------------------------
// DeriveTraceId: pure, discriminating, never zero.
// ---------------------------------------------------------------------------

TEST(DeriveTraceIdTest, PureAndDiscriminating) {
  EXPECT_EQ(DeriveTraceId(1, 2, 3), DeriveTraceId(1, 2, 3));
  EXPECT_NE(DeriveTraceId(1, 2, 3), DeriveTraceId(2, 2, 3));
  EXPECT_NE(DeriveTraceId(1, 2, 3), DeriveTraceId(1, 3, 3));
  EXPECT_NE(DeriveTraceId(1, 2, 3), DeriveTraceId(1, 2, 4));
}

TEST(DeriveTraceIdTest, NeverReturnsTheUnsetSentinel) {
  // 0 means "no trace"; even the all-zero identity must map elsewhere.
  EXPECT_NE(DeriveTraceId(0, 0, 0), 0u);
}

// ---------------------------------------------------------------------------
// TraceBuilder: sequential ids, bounds, CloseAll.
// ---------------------------------------------------------------------------

TEST(TraceBuilderTest, SequentialIdsAndFinish) {
  TraceBuilder b(/*trace_id=*/42);
  const std::uint32_t root =
      b.StartSpan(SpanKind::kServeRequest, kNoParentSpan, /*start_us=*/10);
  const std::uint32_t child =
      b.StartSpan(SpanKind::kPlanSample, root, 20, /*step=*/0, /*shard=*/0,
                  /*items=*/3);
  EXPECT_EQ(root, 0u);
  EXPECT_EQ(child, 1u);
  b.EndSpan(child, 30);
  EXPECT_FALSE(b.AllClosed());
  b.EndSpan(root, 40);
  EXPECT_TRUE(b.AllClosed());

  const Trace t = std::move(b).Finish(/*tenant=*/3, /*request_id=*/77,
                                      /*status=*/1);
  EXPECT_EQ(t.trace_id, 42u);
  EXPECT_EQ(t.tenant, 3u);
  EXPECT_EQ(t.request_id, 77u);
  EXPECT_EQ(t.status, 1u);
  ASSERT_EQ(t.spans.size(), 2u);
  EXPECT_EQ(t.spans[0].parent, kNoParentSpan);
  EXPECT_EQ(t.spans[1].parent, root);
  EXPECT_EQ(t.spans[1].items, 3u);
  EXPECT_EQ(t.DurationUs(), 30u);
}

TEST(TraceBuilderTest, BoundedSpansDropPastTheCap) {
  TraceBuilder b(/*trace_id=*/1, /*max_spans=*/2);
  const std::uint32_t a =
      b.StartSpan(SpanKind::kServeRequest, kNoParentSpan, 0);
  b.StartSpan(SpanKind::kPlanSample, a, 0);
  const std::uint32_t dropped = b.StartSpan(SpanKind::kPlanGather, a, 0);
  EXPECT_EQ(dropped, TraceBuilder::kDroppedSpan);
  EXPECT_EQ(b.NumSpans(), 2u);
  EXPECT_EQ(b.dropped_spans(), 1u);
  // Ending a dropped span is a harmless no-op.
  b.EndSpan(TraceBuilder::kDroppedSpan, 5);
  b.CloseAll(9);
  EXPECT_TRUE(b.AllClosed());
}

TEST(TraceBuilderTest, CloseAllOnlyTouchesOpenSpans) {
  TraceBuilder b(/*trace_id=*/1);
  const std::uint32_t root =
      b.StartSpan(SpanKind::kServeRequest, kNoParentSpan, 0);
  const std::uint32_t done = b.StartSpan(SpanKind::kPlanSample, root, 1);
  b.StartSpan(SpanKind::kPlanGather, root, 2);
  b.EndSpan(done, 7);
  b.CloseAll(99);
  EXPECT_TRUE(b.AllClosed());
  const Trace t = std::move(b).Finish(0, 0, 0);
  EXPECT_EQ(t.spans[done].end_us, 7u) << "already-closed span keeps its end";
  EXPECT_EQ(t.spans[2].end_us, 99u);
  EXPECT_EQ(t.spans[root].end_us, 99u);
}

// ---------------------------------------------------------------------------
// TraceSink: bounded ring, newest win.
// ---------------------------------------------------------------------------

TEST(TraceSinkTest, RingEvictsOldest) {
  TraceSink sink(/*capacity=*/2);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    Trace t;
    t.trace_id = id;
    sink.Publish(std::move(t));
  }
  EXPECT_EQ(sink.published(), 3u);
  EXPECT_EQ(sink.evicted(), 1u);
  const std::vector<Trace> snap = sink.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].trace_id, 2u) << "oldest first";
  EXPECT_EQ(snap[1].trace_id, 3u);
  EXPECT_FALSE(sink.Find(1).has_value());
  EXPECT_TRUE(sink.Find(3).has_value());
}

// ---------------------------------------------------------------------------
// Serving-layer fixture (mirrors test_serve.cc).
// ---------------------------------------------------------------------------

ClusterConfig ServeClusterConfig(std::size_t shards) {
  ClusterConfig cfg;
  cfg.num_shards = shards;
  return cfg;
}

void PopulateGraph(GraphCluster* cluster, std::size_t num_vertices = 200) {
  for (VertexId v = 0; v < num_vertices; ++v) {
    for (std::uint64_t k = 1; k <= 8; ++k) {
      const VertexId dst = (v * 7 + k * 13) % num_vertices;
      cluster->Apply({UpdateKind::kInsert,
                      Edge{v, dst, 1.0 + static_cast<double>(k), 0}});
    }
  }
  for (VertexId v = 0; v < num_vertices; ++v) {
    const std::size_t s = cluster->partitioner().ShardOf(v);
    cluster->shard(s).store().attributes().SetFeatures(
        v, {static_cast<float>(v), static_cast<float>(v) * 0.5f});
  }
}

/// A request exercising every span kind: two sample hops, client-side
/// negatives and a feature gather.
QueryRequest MakeDeepRequest(std::uint32_t tenant, std::uint64_t id,
                             std::uint64_t rng_seed,
                             std::vector<VertexId> seeds) {
  QueryRequest req;
  req.tenant = tenant;
  req.request_id = id;
  req.rng_seed = rng_seed;
  req.seeds = std::move(seeds);
  req.plan.Sample(/*fanout=*/4)
      .Sample(/*fanout=*/2, /*weighted=*/true, /*input=*/0)
      .NegativeSample(/*count=*/8, /*range_lo=*/0, /*range_hi=*/200,
                      /*input=*/1)
      .Gather(/*input=*/1);
  return req;
}

/// The structural identity of a span: everything except its timestamps.
/// Span ids are creation-order sequential, so including (id, parent)
/// compares the tree shape, not just the kind multiset.
Span StructureOnly(Span s) {
  s.start_us = 0;
  s.end_us = 0;
  return s;
}

std::vector<Span> StructureOf(const Trace& t) {
  std::vector<Span> out;
  out.reserve(t.spans.size());
  for (const Span& s : t.spans) out.push_back(StructureOnly(s));
  return out;
}

// ---------------------------------------------------------------------------
// Determinism: batched and solo executions build identical span TREES.
// ---------------------------------------------------------------------------

TEST(TraceServeTest, BatchedAndSoloEmitIdenticalSpanTrees) {
  GraphCluster batched_cluster(ServeClusterConfig(4));
  GraphCluster solo_cluster(ServeClusterConfig(4));
  PopulateGraph(&batched_cluster);
  PopulateGraph(&solo_cluster);
  EpochCoordinator epochs;

  ServeConfig batched_cfg;
  batched_cfg.batcher.max_batch = 8;  // all 8 requests form ONE batch
  GraphServer batched(&batched_cluster, &epochs, batched_cfg);

  ServeConfig solo_cfg;
  solo_cfg.batcher.max_batch = 1;
  GraphServer solo(&solo_cluster, &epochs, solo_cfg);

  std::vector<QueryRequest> requests;
  for (std::uint64_t i = 0; i < 8; ++i) {
    requests.push_back(MakeDeepRequest(i % 4, i, /*rng_seed=*/1000 + i,
                                       {i * 3, i * 3 + 1, i * 3 + 2}));
  }

  for (const QueryRequest& req : requests) {
    ASSERT_TRUE(batched.Submit(req, /*now_us=*/0).ok());
  }
  batched.Drain(0);
  ASSERT_EQ(batched.Stats().batches, 1u);

  for (const QueryRequest& req : requests) {
    ASSERT_TRUE(solo.Submit(req, /*now_us=*/0).ok());
    solo.Drain(0);
  }

  for (const QueryRequest& req : requests) {
    const std::uint64_t id =
        DeriveTraceId(req.tenant, req.request_id, req.rng_seed);
    const std::optional<Trace> b = batched.traces().Find(id);
    const std::optional<Trace> s = solo.traces().Find(id);
    ASSERT_TRUE(b.has_value()) << "request " << req.request_id;
    ASSERT_TRUE(s.has_value()) << "request " << req.request_id;
    EXPECT_EQ(StructureOf(*b), StructureOf(*s))
        << "batched span tree differs from solo for request "
        << req.request_id;

    // Sanity on the shape itself: one root, a step span per plan op, and
    // rpc children only under RPC-backed steps.
    ASSERT_FALSE(b->spans.empty());
    EXPECT_EQ(b->spans[0].kind, SpanKind::kServeRequest);
    EXPECT_EQ(b->spans[0].parent, kNoParentSpan);
    std::set<SpanKind> kinds;
    for (const Span& sp : b->spans) {
      EXPECT_TRUE(sp.closed);
      kinds.insert(sp.kind);
      if (sp.kind == SpanKind::kRpcShard) {
        EXPECT_EQ(b->spans[sp.parent].step, sp.step);
        EXPECT_GT(sp.items, 0u);
      }
    }
    EXPECT_TRUE(kinds.count(SpanKind::kPlanSample));
    EXPECT_TRUE(kinds.count(SpanKind::kPlanNegative));
    EXPECT_TRUE(kinds.count(SpanKind::kPlanGather));
    EXPECT_TRUE(kinds.count(SpanKind::kRpcShard));
  }
}

// ---------------------------------------------------------------------------
// Responses carry the derived id; propagated contexts are respected.
// ---------------------------------------------------------------------------

TEST(TraceServeTest, ResponsesCarryTheDerivedTraceId) {
  GraphCluster cluster(ServeClusterConfig(2));
  PopulateGraph(&cluster);
  EpochCoordinator epochs;
  GraphServer server(&cluster, &epochs, {});

  QueryRequest req = MakeDeepRequest(1, /*id=*/5, /*rng_seed=*/9, {1, 2});
  ASSERT_TRUE(server.Submit(req, 0).ok());
  server.Drain(0);
  const std::vector<QueryResponse> resp = server.TakeCompleted();
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0].trace_id, DeriveTraceId(1, 5, 9));
  EXPECT_TRUE(server.traces().Find(resp[0].trace_id).has_value());
}

TEST(TraceServeTest, PropagatedContextKeepsIdAndParent) {
  GraphCluster cluster(ServeClusterConfig(2));
  PopulateGraph(&cluster);
  EpochCoordinator epochs;
  GraphServer server(&cluster, &epochs, {});

  // A sampled upstream context: the server must attach under it rather
  // than derive a fresh id.
  QueryRequest req = MakeDeepRequest(0, /*id=*/1, /*rng_seed=*/1, {1});
  req.trace = TraceContext{/*trace_id=*/0xABCDEFu, /*parent_span=*/7,
                           TraceContext::kSampled};
  ASSERT_TRUE(server.Submit(req, 0).ok());

  // An unsampled upstream context: the id rides through, but no spans
  // are recorded.
  QueryRequest quiet = MakeDeepRequest(0, /*id=*/2, /*rng_seed=*/2, {2});
  quiet.trace = TraceContext{/*trace_id=*/0x5151u, /*parent_span=*/0,
                             /*flags=*/0};
  ASSERT_TRUE(server.Submit(quiet, 0).ok());

  server.Drain(0);
  std::vector<QueryResponse> resp = server.TakeCompleted();
  ASSERT_EQ(resp.size(), 2u);
  std::sort(resp.begin(), resp.end(),
            [](const QueryResponse& a, const QueryResponse& b) {
              return a.request_id < b.request_id;
            });
  EXPECT_EQ(resp[0].trace_id, 0xABCDEFu);
  EXPECT_EQ(resp[1].trace_id, 0x5151u);

  const std::optional<Trace> t = server.traces().Find(0xABCDEFu);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->spans[0].parent, 7u) << "root attaches under the caller's span";
  EXPECT_FALSE(server.traces().Find(0x5151u).has_value())
      << "unsampled context records no spans";
}

// ---------------------------------------------------------------------------
// Shed path: an evicted request's trace is published with every span
// closed (CloseAll), status kShed.
// ---------------------------------------------------------------------------

TEST(TraceServeTest, ShedRequestStillClosesEverySpan) {
  GraphCluster cluster(ServeClusterConfig(2));
  PopulateGraph(&cluster);
  EpochCoordinator epochs;
  ServeConfig cfg;
  cfg.admission.max_in_flight = 1;
  cfg.admission.policy = serve::AdmissionPolicy::kShedOldest;
  cfg.batcher.max_batch = 64;
  GraphServer server(&cluster, &epochs, cfg);

  ASSERT_TRUE(server.Submit(MakeDeepRequest(0, 1, 1, {1}), 0).ok());
  ASSERT_TRUE(server.Submit(MakeDeepRequest(1, 2, 2, {2}), 5).ok());
  ASSERT_EQ(server.Stats().shed, 1u);

  // The victim's trace is published at shed time, before any drain.
  const std::uint64_t shed_id = DeriveTraceId(0, 1, 1);
  const std::optional<Trace> t = server.traces().Find(shed_id);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->status, static_cast<std::uint8_t>(RequestStatus::kShed));
  ASSERT_FALSE(t->spans.empty());
  for (const Span& s : t->spans) {
    EXPECT_TRUE(s.closed) << "span " << s.id << " leaked open through shed";
  }

  server.Drain(100);
  EXPECT_TRUE(server.traces().Find(DeriveTraceId(1, 2, 2)).has_value())
      << "the survivor retires with a trace too";
}

// ---------------------------------------------------------------------------
// Acceptance: a fault-injected SLO violation window carries an exemplar
// trace spanning serve (root) -> cluster round -> shard RPC.
// ---------------------------------------------------------------------------

TEST(TraceServeTest, FaultInjectedSloViolationCarriesExemplarTrace) {
  // Every RPC draws a slow fault: +500ms of virtual latency per round,
  // hundreds of times past the 2ms p99 target.
  ClusterConfig ccfg = ServeClusterConfig(2);
  ccfg.fault.slow_prob = 1.0;
  ccfg.fault.slow_extra_us = 500000;
  GraphCluster cluster(ccfg);
  PopulateGraph(&cluster);
  EpochCoordinator epochs;

  ServeConfig cfg;
  cfg.batcher.max_batch = 4;
  cfg.slo_target_p99_us = 2000;
  GraphServer server(&cluster, &epochs, cfg);

  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        server.Submit(MakeDeepRequest(i % 2, i, /*rng_seed=*/50 + i, {i}), 0)
            .ok());
  }
  server.Drain(0);

  const SloReport report = server.EndSloWindow();
  ASSERT_TRUE(report.violated) << "p99 " << report.p99_us;
  ASSERT_NE(report.exemplar_trace_id, 0u)
      << "a violated window must carry its worst-latency trace";

  const std::optional<Trace> t = server.traces().Find(report.exemplar_trace_id);
  ASSERT_TRUE(t.has_value()) << "exemplar must be resolvable in the sink";
  EXPECT_GT(t->DurationUs(), cfg.slo_target_p99_us);

  // The exemplar spans all three layers of the request's execution.
  std::set<SpanKind> kinds;
  for (const Span& s : t->spans) {
    EXPECT_TRUE(s.closed);
    kinds.insert(s.kind);
  }
  EXPECT_TRUE(kinds.count(SpanKind::kServeRequest)) << "serve layer";
  EXPECT_TRUE(kinds.count(SpanKind::kPlanSample)) << "cluster round";
  EXPECT_TRUE(kinds.count(SpanKind::kRpcShard)) << "shard RPC";

  // A clean follow-up window resets the exemplar tracking.
  const SloReport clean = server.EndSloWindow();
  EXPECT_FALSE(clean.violated);
  EXPECT_EQ(clean.exemplar_trace_id, 0u);
}

}  // namespace
}  // namespace platod2gl
