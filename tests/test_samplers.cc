// Sampler tests: node / neighbor / subgraph sampling operators (paper
// Section III).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/thread_pool.h"
#include "sampling/neighbor_sampler.h"
#include "sampling/node_sampler.h"
#include "sampling/subgraph_sampler.h"
#include "storage/graph_store.h"

namespace platod2gl {
namespace {

// Seeds 1..10, seed s links to {s*100 + 1 .. s*100 + 5}.
void FillStarGraph(GraphStore* g) {
  for (VertexId s = 1; s <= 10; ++s) {
    for (VertexId k = 1; k <= 5; ++k) {
      g->AddEdge({s, s * 100 + k, 1.0, 0});
    }
  }
}

TEST(NeighborSamplerTest, BatchLayoutAndMembership) {
  GraphStore g;
  FillStarGraph(&g);
  NeighborSampler sampler(&g);
  Xoshiro256 rng(1);
  const std::vector<VertexId> seeds = {1, 5, 999, 10};
  const NeighborBatch batch =
      sampler.Sample(seeds, {.fanout = 8, .weighted = true}, rng);
  ASSERT_EQ(batch.NumSeeds(), 4u);
  EXPECT_EQ(batch.offsets[1] - batch.offsets[0], 8u);
  EXPECT_EQ(batch.offsets[3] - batch.offsets[2], 0u);  // dangling seed 999
  for (std::size_t j = batch.offsets[0]; j < batch.offsets[1]; ++j) {
    EXPECT_GE(batch.neighbors[j], 101u);
    EXPECT_LE(batch.neighbors[j], 105u);
  }
  for (std::size_t j = batch.offsets[3]; j < batch.offsets[4]; ++j) {
    EXPECT_GE(batch.neighbors[j], 1001u);
  }
}

TEST(NeighborSamplerTest, ParallelMatchesLayout) {
  GraphStore g;
  FillStarGraph(&g);
  NeighborSampler sampler(&g);
  ThreadPool pool(4);
  std::vector<VertexId> seeds;
  for (int i = 0; i < 100; ++i) seeds.push_back((i % 10) + 1);
  const NeighborBatch batch =
      sampler.SampleParallel(seeds, {.fanout = 5}, pool, /*seed=*/3);
  ASSERT_EQ(batch.NumSeeds(), 100u);
  EXPECT_EQ(batch.neighbors.size(), 500u);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::size_t j = batch.offsets[i]; j < batch.offsets[i + 1]; ++j) {
      EXPECT_EQ(batch.neighbors[j] / 100, seeds[i]) << "seed " << seeds[i];
    }
  }
}

TEST(NodeSamplerTest, UniformCoversSources) {
  GraphStore g;
  FillStarGraph(&g);
  NodeSampler sampler(&g.topology(0));
  EXPECT_EQ(sampler.population(), 10u);
  Xoshiro256 rng(2);
  std::set<VertexId> seen;
  for (VertexId v : sampler.SampleUniform(5000, rng)) {
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(NodeSamplerTest, DegreeWeightedFavorsHeavyVertices) {
  GraphStore g;
  for (VertexId d = 0; d < 90; ++d) g.AddEdge({1, 1000 + d, 1.0, 0});
  for (VertexId d = 0; d < 10; ++d) g.AddEdge({2, 2000 + d, 1.0, 0});
  NodeSampler sampler(&g.topology(0));
  Xoshiro256 rng(3);
  int heavy = 0;
  const auto picks = sampler.SampleByDegree(10000, rng);
  for (VertexId v : picks) heavy += (v == 1);
  EXPECT_NEAR(heavy / 10000.0, 0.9, 0.02);
}

TEST(NodeSamplerTest, RefreshSeesNewVertices) {
  GraphStore g;
  FillStarGraph(&g);
  NodeSampler sampler(&g.topology(0));
  g.AddEdge({77, 78, 1.0, 0});
  EXPECT_EQ(sampler.population(), 10u);  // stale until refresh
  sampler.Refresh();
  EXPECT_EQ(sampler.population(), 11u);
}

TEST(NodeSamplerTest, EmptyStoreYieldsNothing) {
  TopologyStore empty;
  NodeSampler sampler(&empty);
  Xoshiro256 rng(4);
  EXPECT_TRUE(sampler.SampleUniform(10, rng).empty());
  EXPECT_TRUE(sampler.SampleByDegree(10, rng).empty());
}

TEST(SubgraphSamplerTest, TwoHopShapeAndParents) {
  // 1 -> {2,3}; 2 -> {4}; 3 -> {5}.
  GraphStore g;
  g.AddEdge({1, 2, 1.0, 0});
  g.AddEdge({1, 3, 1.0, 0});
  g.AddEdge({2, 4, 1.0, 0});
  g.AddEdge({3, 5, 1.0, 0});
  SubgraphSampler sampler(&g);
  Xoshiro256 rng(5);
  const SampledSubgraph sg =
      sampler.Sample({1}, {{.fanout = 4}, {.fanout = 2}}, rng);
  ASSERT_EQ(sg.layers.size(), 3u);
  ASSERT_EQ(sg.parents.size(), 2u);
  EXPECT_EQ(sg.layers[0], (std::vector<VertexId>{1}));
  EXPECT_EQ(sg.layers[1].size(), 4u);
  for (VertexId v : sg.layers[1]) EXPECT_TRUE(v == 2 || v == 3);
  // Every hop-2 vertex's parent link must be consistent with topology.
  for (std::size_t j = 0; j < sg.layers[2].size(); ++j) {
    const VertexId parent = sg.layers[1][sg.parents[1][j]];
    const VertexId child = sg.layers[2][j];
    EXPECT_TRUE((parent == 2 && child == 4) || (parent == 3 && child == 5))
        << parent << "->" << child;
  }
  EXPECT_EQ(sg.NumHops(), 2u);
  EXPECT_EQ(sg.TotalVertices(), 1 + sg.layers[1].size() + sg.layers[2].size());
}

TEST(SubgraphSamplerTest, DanglingFrontierStopsExpanding) {
  GraphStore g;
  g.AddEdge({1, 2, 1.0, 0});  // 2 has no out-edges
  SubgraphSampler sampler(&g);
  Xoshiro256 rng(6);
  const SampledSubgraph sg = sampler.Sample({1}, {{.fanout = 3},
                                                  {.fanout = 3}}, rng);
  EXPECT_EQ(sg.layers[1].size(), 3u);  // three copies of vertex 2
  EXPECT_TRUE(sg.layers[2].empty());
}

TEST(SubgraphSamplerTest, MetaPathAcrossRelations) {
  // Relation 0: user->live; relation 1: live->tag.
  GraphStore g(GraphStoreConfig{.num_relations = 2});
  g.AddEdge({1, 100, 1.0, 0});
  g.AddEdge({100, 7000, 1.0, 1});
  SubgraphSampler sampler(&g);
  Xoshiro256 rng(7);
  const SampledSubgraph sg = sampler.Sample(
      {1}, {{.fanout = 2, .edge_type = 0}, {.fanout = 2, .edge_type = 1}},
      rng);
  for (VertexId v : sg.layers[1]) EXPECT_EQ(v, 100u);
  for (VertexId v : sg.layers[2]) EXPECT_EQ(v, 7000u);
}

TEST(SubgraphSamplerTest, EmptySeedsAndNoHops) {
  GraphStore g;
  FillStarGraph(&g);
  SubgraphSampler sampler(&g);
  Xoshiro256 rng(8);
  const SampledSubgraph none = sampler.Sample({}, {{.fanout = 2}}, rng);
  EXPECT_TRUE(none.layers[1].empty());
  const SampledSubgraph zero_hops = sampler.Sample({1}, {}, rng);
  EXPECT_EQ(zero_hops.layers.size(), 1u);
  EXPECT_EQ(zero_hops.NumHops(), 0u);
}


TEST(CompactSubgraphTest, LayersAreUniqueAndEdgesValid) {
  // A hub-heavy graph: every seed links to the same hub, which would be
  // duplicated fanout-fold in the non-compact layout.
  GraphStore g;
  for (VertexId s = 1; s <= 8; ++s) g.AddEdge({s, 1000, 1.0, 0});
  g.AddEdge({1000, 2000, 1.0, 0});
  SubgraphSampler sampler(&g);
  Xoshiro256 rng(31);
  const CompactSubgraph sg = sampler.SampleUnique(
      {1, 2, 3, 4, 5, 6, 7, 8}, {{.fanout = 4}, {.fanout = 4}}, rng);

  ASSERT_EQ(sg.layers.size(), 3u);
  EXPECT_EQ(sg.layers[1], (std::vector<VertexId>{1000}))
      << "the hub appears exactly once";
  EXPECT_EQ(sg.layers[2], (std::vector<VertexId>{2000}));
  // Every seed has an edge to the hub; duplicate draws collapsed.
  EXPECT_EQ(sg.hop_edges[0].size(), 8u);
  for (const auto& [p, c] : sg.hop_edges[0]) {
    EXPECT_LT(p, sg.layers[0].size());
    EXPECT_EQ(c, 0u);
  }
  EXPECT_EQ(sg.hop_edges[1].size(), 1u);
  EXPECT_EQ(sg.TotalVertices(), 8u + 1u + 1u);
}

TEST(CompactSubgraphTest, SeedDeduplication) {
  GraphStore g;
  g.AddEdge({1, 2, 1.0, 0});
  SubgraphSampler sampler(&g);
  Xoshiro256 rng(32);
  const CompactSubgraph sg =
      sampler.SampleUnique({1, 1, 1}, {{.fanout = 2}}, rng);
  EXPECT_EQ(sg.layers[0], (std::vector<VertexId>{1}));
  EXPECT_EQ(sg.layers[1], (std::vector<VertexId>{2}));
}

TEST(CompactSubgraphTest, EdgePairsReferenceRealEdges) {
  GraphStore g;
  Xoshiro256 gen(33);
  std::set<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 0; v < 20; ++v) {
    for (int k = 0; k < 3; ++k) {
      const VertexId u = gen.NextUint64(20);
      if (u != v && edges.insert({v, u}).second) g.AddEdge({v, u, 1.0, 0});
    }
  }
  SubgraphSampler sampler(&g);
  Xoshiro256 rng(34);
  const CompactSubgraph sg = sampler.SampleUnique(
      {0, 1, 2, 3, 4}, {{.fanout = 3}, {.fanout = 3}}, rng);
  for (std::size_t hop = 0; hop < sg.hop_edges.size(); ++hop) {
    for (const auto& [p, c] : sg.hop_edges[hop]) {
      ASSERT_LT(p, sg.layers[hop].size());
      ASSERT_LT(c, sg.layers[hop + 1].size());
      EXPECT_TRUE(edges.count({sg.layers[hop][p], sg.layers[hop + 1][c]}))
          << sg.layers[hop][p] << "->" << sg.layers[hop + 1][c];
    }
  }
}

}  // namespace
}  // namespace platod2gl
