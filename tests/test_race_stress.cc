// Race-stress suites for the TSan CI job (and tier-1, where they run as
// plain concurrency smoke tests).
//
// Every scenario here sticks to the documented synchronisation contracts —
// readers and the batch updater touch disjoint source partitions, map
// structure is never grown while lock-free readers are live, the sample
// cache and thread pool are hammered from many threads at once — so a TSan
// report is a *bug*, not an expected finding. This is the runtime
// counterpart of the clang -Wthread-safety job: the annotations prove the
// locking discipline statically, these tests prove the lock-free
// protocols (version stamps, atomic counters, heap-pinned values)
// dynamically.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "concurrency/batch_updater.h"
#include "sampling/sample_cache.h"
#include "storage/cuckoo_map.h"
#include "storage/graph_store.h"
#include "storage/topology_store.h"

namespace platod2gl {
namespace {

// Readers sample a read-only source partition through the hot-vertex
// cache while the batch updater churns a disjoint partition — the
// PALM-style schedule the paper's serving path uses. All sources exist
// before the threads start, so the cuckoo map's structure is immutable
// and the lock-free FindTree reads are race-free by contract.
TEST(RaceStressTest, SamplersVsBatchUpdaterOnDisjointPartitions) {
  constexpr std::size_t kSources = 256;
  constexpr std::size_t kReadPartition = kSources / 2;
  constexpr std::size_t kDegree = 48;
  constexpr int kReaderThreads = 4;
  constexpr int kRounds = 6;

  GraphStoreConfig config;
  config.sample_cache.min_degree = 8;
  config.sample_cache.admit_after_misses = 1;
  config.sample_cache.capacity = 128;  // small: keep eviction churn alive
  config.sample_cache.num_shards = 4;
  GraphStore graph(config);

  Xoshiro256 seed_rng(99);
  for (VertexId src = 0; src < kSources; ++src) {
    for (std::size_t j = 0; j < kDegree; ++j) {
      graph.AddEdge(Edge{src, 100000 + seed_rng.NextUint64(5000),
                         0.1 + seed_rng.NextDouble(), 0});
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> draws{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaderThreads);
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&, t] {
      Xoshiro256 rng(1000 + t);
      std::vector<VertexId> out;
      while (!stop.load(std::memory_order_acquire)) {
        out.clear();
        const VertexId src = rng.NextUint64(kReadPartition);
        if (graph.SampleNeighbors(src, 16, (t & 1) != 0, rng, &out)) {
          // order: test tally; joins order the final read
          draws.fetch_add(out.size(), std::memory_order_relaxed);
        }
      }
    });
  }

  ThreadPool pool(4);
  BatchUpdater updater(&graph.topology(0), &pool);
  Xoshiro256 batch_rng(7);
  for (int round = 0; round < kRounds; ++round) {
    std::vector<EdgeUpdate> batch;
    batch.reserve(2000);
    for (int i = 0; i < 2000; ++i) {
      // Writer partition only: sources [kReadPartition, kSources).
      const VertexId src =
          kReadPartition + batch_rng.NextUint64(kSources - kReadPartition);
      const double r = batch_rng.NextDouble();
      EdgeUpdate u;
      u.edge = Edge{src, 100000 + batch_rng.NextUint64(5000),
                    0.1 + batch_rng.NextDouble(), 0};
      u.kind = r < 0.6 ? UpdateKind::kInsert
                       : (r < 0.8 ? UpdateKind::kInPlaceUpdate
                                  : UpdateKind::kDelete);
      batch.push_back(u);
    }
    updater.ApplyBatch(std::move(batch));
  }

  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_GT(draws.load(), 0u);
  std::string err;
  EXPECT_TRUE(graph.topology(0).CheckAllInvariants(&err)) << err;
  // Each Sample call lands in exactly one stats bucket.
  const SampleCacheStats stats = graph.sample_cache()->Stats();
  EXPECT_GT(stats.hits + stats.misses + stats.stale_hits, 0u);
}

// Admission, eviction and stale-entry rebuild all racing on a shared
// sample cache: reader rounds run fully concurrent, mutations happen in
// the quiescent gaps between rounds (mutating a tree that a concurrent
// BuildEntry is walking is outside the cache's contract).
TEST(RaceStressTest, SampleCacheAdmissionEvictionRebuildChurn) {
  constexpr std::size_t kTrees = 300;
  constexpr int kThreads = 8;
  constexpr int kRounds = 3;
  constexpr int kDrawsPerThread = 4000;

  TopologyStore store;
  Xoshiro256 seed_rng(5);
  for (VertexId src = 0; src < kTrees; ++src) {
    for (std::size_t j = 0; j < 24; ++j) {
      store.AddEdge(src, 7000 + seed_rng.NextUint64(900),
                    0.1 + seed_rng.NextDouble());
    }
  }

  SampleCacheConfig cfg;
  cfg.capacity = 128;  // << kTrees: constant LRU pressure
  cfg.num_shards = 4;
  cfg.min_degree = 4;
  cfg.admit_after_misses = 1;
  SampleCache cache(cfg);

  std::uint64_t calls = 0;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t, round] {
        Xoshiro256 rng(round * 100 + t);
        std::vector<VertexId> out;
        for (int i = 0; i < kDrawsPerThread; ++i) {
          // Zipf-ish skew: half the traffic on 16 hot trees keeps them
          // cached across rounds so post-mutation hits are stale hits.
          const VertexId src = (i & 1) != 0 ? rng.NextUint64(16)
                                            : rng.NextUint64(kTrees);
          const Samtree* tree = store.FindTree(src);
          ASSERT_NE(tree, nullptr);
          out.clear();
          if (!cache.Sample(src, 0, *tree, (i & 2) != 0, 4, rng, &out)) {
            // Cold path: the descent the cache declined to serve.
            store.SampleNeighbors(src, 4, false, rng, &out);
          }
          ASSERT_EQ(out.size(), 4u);
        }
      });
    }
    for (auto& th : threads) th.join();
    calls += static_cast<std::uint64_t>(kThreads) * kDrawsPerThread;

    // Quiescent gap: stale out the hot set for the next round.
    for (VertexId src = 0; src < 16; ++src) {
      store.UpdateEdge(src, 7000 + seed_rng.NextUint64(900),
                       0.1 + seed_rng.NextDouble());
      store.AddEdge(src, 7000 + seed_rng.NextUint64(900), 1.0);
    }
  }

  const SampleCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.stale_hits, calls);
  EXPECT_GT(stats.admissions, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.rebuilds, 0u);
  EXPECT_EQ(stats.rebuilds, stats.stale_hits);
}

// GetOrCreate / With / Erase / Size all racing on one map. Values are
// bumped under the shard lock; Size() reads the relaxed atomic counters,
// so polling it mid-insert is race-free (it used to be a plain size_t —
// this test is the TSan regression lock for that fix).
TEST(RaceStressTest, CuckooMapConcurrentWritersAndSizePolling) {
  CuckooMap<std::uint64_t> map(8, 4);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeysPerThread = 400;
  constexpr int kRepeats = 25;

  std::atomic<bool> stop{false};
  std::thread poller([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t n = map.Size();
      EXPECT_GE(n + 1, last);  // grows monotonically in this test (no Erase)
      last = n;
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      // Each thread owns keys [t*K, (t+1)*K) and shares keys [10^6, 10^6+64)
      // with every other thread.
      for (int r = 0; r < kRepeats; ++r) {
        for (std::uint64_t k = 0; k < kKeysPerThread; ++k) {
          map.With(1 + t * kKeysPerThread + k,
                   [](std::uint64_t& v) { ++v; });
        }
        for (std::uint64_t k = 0; k < 64; ++k) {
          map.With(1000000 + k, [](std::uint64_t& v) { ++v; });
        }
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  poller.join();

  EXPECT_EQ(map.Size(), kThreads * kKeysPerThread + 64);
  std::uint64_t total = 0;
  map.ForEach([&](VertexId, const std::uint64_t& v) { total += v; });
  EXPECT_EQ(total,
            static_cast<std::uint64_t>(kThreads) * kRepeats *
                (kKeysPerThread + 64));
}

// Concurrent Submit storms from external threads plus overlapping
// ParallelForBlocked calls: exercises the guarded queue/bookkeeping state
// the thread-safety annotations now cover.
TEST(RaceStressTest, ThreadPoolSubmitAndParallelForStorm) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> counter{0};

  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 1500;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kTasksEach; ++i) {
        // order: test tally; joins order the final read
        pool.Submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& th : submitters) th.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), kSubmitters * kTasksEach);

  counter.store(0);
  std::thread a([&] {
    pool.ParallelForBlocked(5000, 64, [&](std::size_t) {
      // order: test tally; joins order the final read
      counter.fetch_add(1, std::memory_order_relaxed);
    });
  });
  std::thread b([&] {
    pool.ParallelForBlocked(5000, 64, [&](std::size_t) {
      // order: test tally; joins order the final read
      counter.fetch_add(1, std::memory_order_relaxed);
    });
  });
  a.join();
  b.join();
  // ParallelForBlocked's Wait() is pool-global, so each call may also wait
  // on the other's tasks — but both must have fully run by now.
  EXPECT_EQ(counter.load(), 10000u);
}

}  // namespace
}  // namespace platod2gl
