// Replication suite: WAL shipping to read replicas, deterministic
// failover and anti-entropy repair (DESIGN.md §13, docs/replication.md).
// The headline guarantees pinned here:
//
//   * replicas converge to the primary's exact bytes under drop /
//     duplicate / reorder faults, replica crashes, partitions and
//     WAL-truncating checkpoints (snapshot bootstrap);
//   * reads fall back to a replica within the staleness budget when a
//     primary is down (kStale, bit-identical when caught up) and degrade
//     beyond it;
//   * kill-and-promote is deterministic: same seed, same schedule, and
//     the promoted store is byte-identical to a never-crashed control;
//   * a fault-free replicated run is bit-identical to a
//     replication-disabled run;
//   * anti-entropy repairs injected divergence within one digest round
//     and reports zero mismatches across a clean 10-seed sweep.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "dist/cluster.h"
#include "dist/replication.h"
#include "dist/wire.h"
#include "io/checkpoint.h"

namespace platod2gl {
namespace {

ClusterConfig ReplicatedConfig(std::size_t replicas,
                               std::uint64_t seed = 0xC0FFEE) {
  ClusterConfig cfg;
  cfg.num_shards = 4;
  cfg.fault.seed = seed;
  cfg.replication.num_replicas = replicas;
  cfg.replication.suspicion_timeout_us = 1000;
  return cfg;
}

std::vector<EdgeUpdate> MakeBatch(VertexId lo, VertexId hi, VertexId offset,
                                  Weight w) {
  std::vector<EdgeUpdate> batch;
  for (VertexId s = lo; s <= hi; ++s) {
    batch.push_back({UpdateKind::kInsert, Edge{s, s + offset, w, 0}});
  }
  return batch;
}

std::string PrimaryBytes(GraphCluster& c, std::size_t s) {
  std::string bytes;
  EXPECT_TRUE(SaveGraphToBytes(c.shard(s).store(), &bytes).ok());
  return bytes;
}

std::string ReplicaBytes(GraphCluster& c, std::size_t s, std::size_t r) {
  std::string bytes;
  EXPECT_TRUE(c.replication()->SnapshotReplica(s, r, &bytes).ok());
  return bytes;
}

/// Assert every replica of every shard holds the primary's exact bytes.
void ExpectAllReplicasConverged(GraphCluster& c, std::size_t replicas) {
  for (std::size_t s = 0; s < c.num_shards(); ++s) {
    const std::string want = PrimaryBytes(c, s);
    for (std::size_t r = 0; r < replicas; ++r) {
      EXPECT_EQ(want, ReplicaBytes(c, s, r))
          << "shard " << s << " replica " << r << " diverged";
    }
  }
}

// --- AckWindow -------------------------------------------------------------

TEST(AckWindowTest, MonotonicAndImmediateWhenAlreadyAcked) {
  AckWindow w;
  EXPECT_EQ(w.acked(), 0u);
  w.Ack(10);
  w.Ack(5);  // stale cumulative ack: ignored
  EXPECT_EQ(w.acked(), 10u);
  w.WaitForAcked(10);  // must not block
  w.WaitForAcked(3);
}

TEST(AckWindowTest, WakesBlockedWaiter) {
  AckWindow w;
  std::thread waiter([&] { w.WaitForAcked(42); });
  w.Ack(41);  // not enough yet
  w.Ack(42);
  waiter.join();
  EXPECT_EQ(w.acked(), 42u);
}

// --- Basic shipping --------------------------------------------------------

TEST(ReplicationShipTest, ReplicasMatchPrimaryByteForByte) {
  GraphCluster c(ReplicatedConfig(2));
  ASSERT_TRUE(c.has_replication());
  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 300, 1000, 1.0)).ok());
  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 100, 2000, 2.0)).ok());
  ASSERT_TRUE(c.FlushReplication().ok());
  ExpectAllReplicasConverged(c, 2);
  const ReplicationStats rs = c.replication_stats();
  EXPECT_GT(rs.entries_applied, 0u);
  EXPECT_GT(rs.append_messages, 0u);
  EXPECT_GT(rs.bytes_shipped, 0u);
  EXPECT_EQ(rs.rejected_appends, 0u) << "clean channel: no retransmits";
}

TEST(ReplicationShipTest, DisabledByDefaultAndBehaviourUnchanged) {
  ClusterConfig cfg;
  cfg.num_shards = 4;
  GraphCluster c(cfg);
  EXPECT_FALSE(c.has_replication());
  EXPECT_EQ(c.replication(), nullptr);
  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 50, 1000, 1.0)).ok());
  EXPECT_TRUE(c.FlushReplication().ok());          // no-op
  EXPECT_EQ(c.RunAntiEntropy().digest_rounds, 0u); // no-op
  EXPECT_EQ(c.replication_stats().append_messages, 0u);
}

TEST(ReplicationShipTest, AckedWatermarkReachesLogHeadAfterFlush) {
  GraphCluster c(ReplicatedConfig(1));
  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 80, 1000, 1.0)).ok());
  ASSERT_TRUE(c.FlushReplication().ok());
  for (std::size_t s = 0; s < c.num_shards(); ++s) {
    const std::uint64_t head = c.shard(s).wal_seq();
    EXPECT_EQ(c.replication()->ack_window(s).acked(), head) << "shard " << s;
    for (const auto& probe : c.replication()->Probe(s)) {
      EXPECT_EQ(probe.applied_seq, head);
      EXPECT_EQ(probe.acked_seq, head);
      EXPECT_LE(probe.acked_seq, probe.applied_seq) << "watermark invariant";
    }
  }
}

// --- Channel faults --------------------------------------------------------

ClusterConfig LossyReplicatedConfig(std::uint64_t seed) {
  ClusterConfig cfg = ReplicatedConfig(2, seed);
  cfg.fault.rep_drop_prob = 0.15;
  cfg.fault.rep_duplicate_prob = 0.10;
  cfg.fault.rep_reorder_prob = 0.10;
  cfg.replication.max_entries_per_append = 8;  // many messages per window
  return cfg;
}

TEST(ReplicationChaosTest, ConvergesUnderDropDuplicateReorder) {
  GraphCluster c(LossyReplicatedConfig(0xBADCAB));
  for (int round = 0; round < 6; ++round) {
    ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 120, 1000 + round * 500,
                                       1.0 + round))
                    .ok());
  }
  ASSERT_TRUE(c.FlushReplication().ok());
  ExpectAllReplicasConverged(c, 2);
  const ReplicationStats rs = c.replication_stats();
  EXPECT_GT(rs.dropped_messages, 0u) << "fault schedule must have fired";
  EXPECT_GT(rs.duplicated_messages, 0u);
  EXPECT_GT(rs.reordered_messages, 0u);
  EXPECT_GT(rs.rejected_appends + rs.duplicate_entries, 0u)
      << "contiguity check must have refused or skipped something";
}

TEST(ReplicationChaosTest, ChaosRunIsAPureFunctionOfTheSeed) {
  auto run = [](std::uint64_t seed) {
    GraphCluster c(LossyReplicatedConfig(seed));
    for (int round = 0; round < 4; ++round) {
      EXPECT_TRUE(
          c.ApplyBatch(MakeBatch(1, 90, 1000 + round * 300, 2.0)).ok());
    }
    EXPECT_TRUE(c.FlushReplication().ok());
    std::vector<std::string> state;
    for (std::size_t s = 0; s < c.num_shards(); ++s) {
      state.push_back(PrimaryBytes(c, s));
      for (std::size_t r = 0; r < 2; ++r) {
        state.push_back(ReplicaBytes(c, s, r));
      }
    }
    return std::make_pair(state, c.replication_stats());
  };
  const auto a = run(7);
  const auto b = run(7);
  EXPECT_EQ(a.first, b.first) << "same seed, same bytes";
  EXPECT_EQ(a.second.dropped_messages, b.second.dropped_messages);
  EXPECT_EQ(a.second.duplicated_messages, b.second.duplicated_messages);
  EXPECT_EQ(a.second.reordered_messages, b.second.reordered_messages);
  EXPECT_EQ(a.second.rejected_appends, b.second.rejected_appends);
  EXPECT_EQ(a.second.append_messages, b.second.append_messages);
  EXPECT_EQ(a.second.bytes_shipped, b.second.bytes_shipped);
}

// --- Replica lifecycle -----------------------------------------------------

TEST(ReplicaLifecycleTest, CrashWipesAndRejoinCatchesUpFromTheLog) {
  GraphCluster c(ReplicatedConfig(2));
  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 100, 1000, 1.0)).ok());
  ASSERT_TRUE(c.FlushReplication().ok());
  for (std::size_t s = 0; s < c.num_shards(); ++s) c.CrashReplica(s, 0);
  for (std::size_t s = 0; s < c.num_shards(); ++s) {
    EXPECT_EQ(c.replication()->Probe(s)[0].applied_seq, 0u) << "wiped";
  }
  // Writes continue while replica 0 is down; replica 1 keeps up.
  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 100, 2000, 2.0)).ok());
  for (std::size_t s = 0; s < c.num_shards(); ++s) c.RecoverReplica(s, 0);
  ASSERT_TRUE(c.FlushReplication().ok());
  ExpectAllReplicasConverged(c, 2);
  // No checkpoint was taken, so the rejoin replayed the log from seq 0 —
  // never a snapshot.
  EXPECT_EQ(c.replication_stats().snapshot_bootstraps, 0u);
}

TEST(ReplicaLifecycleTest, PartitionStallsThenHealCatchesUp) {
  GraphCluster c(ReplicatedConfig(1));
  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 60, 1000, 1.0)).ok());
  ASSERT_TRUE(c.FlushReplication().ok());
  std::vector<std::uint64_t> applied_at_cut(c.num_shards());
  for (std::size_t s = 0; s < c.num_shards(); ++s) {
    applied_at_cut[s] = c.replication()->Probe(s)[0].applied_seq;
    c.PartitionReplica(s, 0);
  }
  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 60, 2000, 2.0)).ok());
  for (std::size_t s = 0; s < c.num_shards(); ++s) {
    EXPECT_EQ(c.replication()->Probe(s)[0].applied_seq, applied_at_cut[s])
        << "partitioned replica must not receive messages";
    c.HealReplica(s, 0);
  }
  ASSERT_TRUE(c.FlushReplication().ok());
  ExpectAllReplicasConverged(c, 1);
}

TEST(ReplicaLifecycleTest, BootstrapsFromSnapshotWhenWalTruncated) {
  // The checkpoint/truncation interaction: checkpointing truncates the
  // WAL prefix, so a wiped replica can no longer replay from seq 0 — it
  // must receive a CRC-checked snapshot covering the truncated prefix,
  // then log-ship the rest. No watermark gap, no lost entries.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "pd2gl_rep_boot";
  std::filesystem::remove_all(dir);
  GraphCluster c(ReplicatedConfig(1));
  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 150, 1000, 1.0)).ok());
  ASSERT_TRUE(c.CheckpointAll(dir.string()).ok());  // truncates WALs
  for (std::size_t s = 0; s < c.num_shards(); ++s) {
    ASSERT_GT(c.shard(s).wal_truncated_through(), 0u);
    c.CrashReplica(s, 0);  // wiped: applied 0 < truncated_through
    c.RecoverReplica(s, 0);
  }
  // Post-truncation tail the snapshot does not cover.
  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 40, 2000, 2.0)).ok());
  ASSERT_TRUE(c.FlushReplication().ok());
  ExpectAllReplicasConverged(c, 1);
  EXPECT_GT(c.replication_stats().snapshot_bootstraps, 0u)
      << "truncated log must force the snapshot path";
  std::filesystem::remove_all(dir);
}

// --- Version negotiation ---------------------------------------------------

TEST(ReplicationVersionTest, OldFormatPeerIsExcludedCleanly) {
  ClusterConfig cfg = ReplicatedConfig(1);
  cfg.replication.wire_version = 99;  // a version no decoder accepts
  GraphCluster c(cfg);
  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 30, 1000, 1.0)).ok());
  ASSERT_TRUE(c.FlushReplication().ok()) << "incompatible peers are skipped,"
                                            " not spun on";
  const ReplicationStats rs = c.replication_stats();
  EXPECT_EQ(rs.unimplemented_peers, c.num_shards())
      << "each shard's replica counted once";
  EXPECT_EQ(rs.entries_applied, 0u) << "no entry crosses a version mismatch";
  for (std::size_t s = 0; s < c.num_shards(); ++s) {
    EXPECT_TRUE(c.replication()->Probe(s)[0].incompatible);
  }
  // An incompatible replica never serves reads: a dead primary degrades.
  const std::size_t dead = c.partitioner().ShardOf(1);
  c.CrashShard(dead);
  const SampleReport report = c.SampleNeighborsChecked({1}, 3, true, 11);
  EXPECT_EQ(report.seed_status[0], SeedStatus::kDegraded);
}

// --- Bounded-staleness read routing ---------------------------------------

TEST(ReplicaReadTest, CaughtUpReplicaServesBitIdenticalSamples) {
  GraphCluster control(ReplicatedConfig(0));  // replication disabled
  GraphCluster c(ReplicatedConfig(2));
  const auto batch = MakeBatch(1, 100, 1000, 1.5);
  ASSERT_TRUE(control.ApplyBatch(batch).ok());
  ASSERT_TRUE(c.ApplyBatch(batch).ok());
  ASSERT_TRUE(c.FlushReplication().ok());

  const std::vector<VertexId> seeds{1, 2, 3, 4, 5, 6, 7, 8};
  const SampleReport want = control.SampleNeighborsChecked(seeds, 3, true, 9);
  ASSERT_TRUE(want.complete());

  const std::size_t dead = c.partitioner().ShardOf(seeds[0]);
  c.CrashShard(dead);
  const SampleReport got = c.SampleNeighborsChecked(seeds, 3, true, 9);
  EXPECT_EQ(got.degraded_seeds, 0u)
      << "a caught-up replica must absorb the failure";
  EXPECT_EQ(got.batch.neighbors, want.batch.neighbors)
      << "replica at lag 0 must serve the primary's exact samples";
  EXPECT_EQ(got.batch.offsets, want.batch.offsets);
  bool saw_stale = false;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (c.partitioner().ShardOf(seeds[i]) == dead) {
      EXPECT_EQ(got.seed_status[i], SeedStatus::kStale);
      saw_stale = true;
    } else {
      EXPECT_EQ(got.seed_status[i], SeedStatus::kOk);
    }
  }
  EXPECT_TRUE(saw_stale);
  EXPECT_GT(c.stats().replica_read_seeds, 0u);
  EXPECT_EQ(c.stats().stale_replica_seeds, 0u) << "lag was 0";
}

TEST(ReplicaReadTest, LaggingReplicaServesWithinBudgetDegradesBeyond) {
  ClusterConfig cfg = ReplicatedConfig(1);
  cfg.replication.staleness_budget = 1000;
  GraphCluster within(cfg);
  cfg.replication.staleness_budget = 0;  // nothing stale may serve
  GraphCluster beyond(cfg);

  for (GraphCluster* c : {&within, &beyond}) {
    ASSERT_TRUE(c->ApplyBatch(MakeBatch(1, 100, 1000, 1.0)).ok());
    ASSERT_TRUE(c->FlushReplication().ok());
    const std::size_t dead = c->partitioner().ShardOf(1);
    // Cut the replica off, then land more writes on the (soon dead)
    // primary's WAL so the replica lags behind the log head.
    for (std::size_t s = 0; s < c->num_shards(); ++s) {
      c->PartitionReplica(s, 0);
    }
    c->CrashShard(dead);
    ASSERT_TRUE(c->ApplyBatch(MakeBatch(1, 100, 2000, 2.0)).ok());
  }

  const SampleReport ok = within.SampleNeighborsChecked({1}, 3, true, 5);
  EXPECT_EQ(ok.seed_status[0], SeedStatus::kStale) << "lag within budget";
  EXPECT_GT(within.stats().stale_replica_seeds, 0u);

  const SampleReport bad = beyond.SampleNeighborsChecked({1}, 3, true, 5);
  EXPECT_EQ(bad.seed_status[0], SeedStatus::kDegraded)
      << "lag beyond budget must degrade, not serve silently-stale data";
  EXPECT_EQ(beyond.stats().stale_replica_seeds, 0u);
}

// --- Deterministic failover ------------------------------------------------

TEST(FailoverTest, PromotedReplicaIsBitIdenticalToNeverCrashedControl) {
  GraphCluster control(ReplicatedConfig(0));
  GraphCluster c(ReplicatedConfig(2));
  const auto phase1 = MakeBatch(1, 150, 1000, 1.0);
  ASSERT_TRUE(control.ApplyBatch(phase1).ok());
  ASSERT_TRUE(c.ApplyBatch(phase1).ok());

  const std::size_t dead = c.partitioner().ShardOf(1);
  c.CrashShard(dead);
  // Mid-ingest writes keep landing in the dead primary's WAL (hinted
  // handoff) and keep shipping to its replicas.
  const auto phase2 = MakeBatch(1, 80, 2000, 2.0);
  ASSERT_TRUE(control.ApplyBatch(phase2).ok());
  ASSERT_TRUE(c.ApplyBatch(phase2).ok());

  // Age the suspicion past the timeout; the health monitor promotes.
  c.AdvanceVirtualTime(500);
  ASSERT_EQ(c.stats().failovers, 0u) << "suspicion must age first";
  c.AdvanceVirtualTime(2000);
  ASSERT_EQ(c.stats().failovers, 1u);
  EXPECT_FALSE(c.shard(dead).crashed()) << "promoted shard serves again";
  EXPECT_FALSE(c.fault_injector().IsCrashed(dead));
  EXPECT_EQ(c.cutover().epoch(), 1u) << "one cut-over, one epoch advance";

  // The acceptance bar: the promoted store is byte-identical to a
  // sequential replay of the primary's log == the never-crashed control.
  EXPECT_EQ(PrimaryBytes(c, dead), PrimaryBytes(control, dead));

  // And the cluster keeps working — fresh writes reach the new primary.
  const auto phase3 = MakeBatch(1, 40, 3000, 3.0);
  ASSERT_TRUE(control.ApplyBatch(phase3).ok());
  ASSERT_TRUE(c.ApplyBatch(phase3).ok());
  EXPECT_EQ(PrimaryBytes(c, dead), PrimaryBytes(control, dead));
}

TEST(FailoverTest, KillPrimaryMidIngestIsDeterministicAcrossSeeds) {
  // Chaos acceptance: kill a primary mid-ingest under channel faults,
  // promote, keep ingesting. For each seed, two runs must agree on every
  // byte and every counter; across seeds the fault schedules differ.
  auto run = [](std::uint64_t seed) {
    GraphCluster c(LossyReplicatedConfig(seed));
    EXPECT_TRUE(c.ApplyBatch(MakeBatch(1, 120, 1000, 1.0)).ok());
    const std::size_t dead = c.partitioner().ShardOf(1);
    c.CrashShard(dead);
    EXPECT_TRUE(c.ApplyBatch(MakeBatch(1, 60, 2000, 2.0)).ok());
    c.AdvanceVirtualTime(500);
    c.AdvanceVirtualTime(2000);
    EXPECT_EQ(c.stats().failovers, 1u);
    EXPECT_TRUE(c.ApplyBatch(MakeBatch(1, 60, 3000, 3.0)).ok());
    EXPECT_TRUE(c.FlushReplication().ok());
    std::vector<std::string> state;
    for (std::size_t s = 0; s < c.num_shards(); ++s) {
      state.push_back(PrimaryBytes(c, s));
      for (std::size_t r = 0; r < 2; ++r) {
        state.push_back(ReplicaBytes(c, s, r));
      }
    }
    const ReplicationStats rs = c.replication_stats();
    return std::make_tuple(state, rs.bytes_shipped, rs.dropped_messages,
                           c.stats().failover_replayed);
  };
  for (const std::uint64_t seed : {3ull, 17ull, 4242ull}) {
    const auto a = run(seed);
    const auto b = run(seed);
    EXPECT_EQ(a, b) << "seed " << seed
                    << ": same seed must give the same schedule and bytes";
  }
}

TEST(FailoverTest, FaultFreeReplicatedRunMatchesReplicationDisabledRun) {
  GraphCluster plain(ReplicatedConfig(0));
  GraphCluster replicated(ReplicatedConfig(2));
  for (int round = 0; round < 3; ++round) {
    const auto batch = MakeBatch(1, 100, 1000 + round * 500, 1.0 + round);
    ASSERT_TRUE(plain.ApplyBatch(batch).ok());
    ASSERT_TRUE(replicated.ApplyBatch(batch).ok());
    const std::vector<VertexId> seeds{1, 5, 9, 33, 77};
    const SampleReport a = plain.SampleNeighborsChecked(
        seeds, 4, true, static_cast<std::uint64_t>(round));
    const SampleReport b = replicated.SampleNeighborsChecked(
        seeds, 4, true, static_cast<std::uint64_t>(round));
    ASSERT_EQ(a.batch.neighbors, b.batch.neighbors) << "round " << round;
    ASSERT_EQ(a.batch.offsets, b.batch.offsets);
    ASSERT_EQ(a.seed_status, b.seed_status);
  }
  for (std::size_t s = 0; s < plain.num_shards(); ++s) {
    EXPECT_EQ(PrimaryBytes(plain, s), PrimaryBytes(replicated, s));
  }
  EXPECT_EQ(replicated.stats().failovers, 0u);
  EXPECT_EQ(replicated.stats().replica_read_seeds, 0u)
      << "fault-free: replicas must never be read";
}

TEST(FailoverTest, NoPromotionWhileEveryReplicaIsUnreachable) {
  GraphCluster c(ReplicatedConfig(1));
  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 40, 1000, 1.0)).ok());
  for (std::size_t s = 0; s < c.num_shards(); ++s) c.PartitionReplica(s, 0);
  const std::size_t dead = c.partitioner().ShardOf(1);
  c.CrashShard(dead);
  c.AdvanceVirtualTime(500);
  c.AdvanceVirtualTime(5000);
  EXPECT_EQ(c.stats().failovers, 0u)
      << "a partitioned replica must not be promoted";
  EXPECT_TRUE(c.shard(dead).crashed());
  // Heal: the next health tick promotes.
  for (std::size_t s = 0; s < c.num_shards(); ++s) c.HealReplica(s, 0);
  c.AdvanceVirtualTime(1);
  EXPECT_EQ(c.stats().failovers, 1u);
  EXPECT_FALSE(c.shard(dead).crashed());
}

// --- Anti-entropy ----------------------------------------------------------

TEST(AntiEntropyTest, CleanReplicasProduceZeroMismatches) {
  GraphCluster c(ReplicatedConfig(2));
  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 200, 1000, 1.0)).ok());
  ASSERT_TRUE(c.FlushReplication().ok());
  const auto report = c.RunAntiEntropy();
  EXPECT_EQ(report.digest_rounds, c.num_shards() * 2);
  EXPECT_EQ(report.digest_mismatches, 0u);
  EXPECT_EQ(report.repaired_replicas, 0u);
  EXPECT_EQ(report.skipped_replicas, 0u);
}

TEST(AntiEntropyTest, RepairsInjectedDivergenceWithinOneRound) {
  GraphCluster c(ReplicatedConfig(2));
  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 200, 1000, 1.0)).ok());
  ASSERT_TRUE(c.FlushReplication().ok());
  ASSERT_TRUE(c.replication()->CorruptReplicaEdgeForTest(0, 1));
  const auto report = c.RunAntiEntropy();
  EXPECT_GE(report.digest_mismatches, 1u);
  EXPECT_EQ(report.repaired_replicas, 1u);
  EXPECT_GT(report.repaired_edges, 0u);
  EXPECT_GT(c.stats().antientropy_repairs, 0u);
  // One round later the fleet digests clean again.
  const auto verify = c.RunAntiEntropy();
  EXPECT_EQ(verify.digest_mismatches, 0u);
}

TEST(AntiEntropyTest, LaggingReplicasAreSkippedNotFlagged) {
  GraphCluster c(ReplicatedConfig(1));
  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 50, 1000, 1.0)).ok());
  ASSERT_TRUE(c.FlushReplication().ok());
  for (std::size_t s = 0; s < c.num_shards(); ++s) c.PartitionReplica(s, 0);
  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 50, 2000, 2.0)).ok());
  for (std::size_t s = 0; s < c.num_shards(); ++s) c.HealReplica(s, 0);
  // Healed but not yet flushed: replicas lag the log head. A digest
  // round must skip them — honest lag is not divergence.
  const auto report = c.RunAntiEntropy();
  EXPECT_EQ(report.digest_mismatches, 0u);
  EXPECT_EQ(report.skipped_replicas, c.num_shards());
}

TEST(AntiEntropyTest, TenSeedCleanSweepHasZeroFalsePositives) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GraphCluster c(LossyReplicatedConfig(seed));
    for (int round = 0; round < 3; ++round) {
      ASSERT_TRUE(
          c.ApplyBatch(MakeBatch(1, 80, 1000 + round * 400, 1.0)).ok());
    }
    ASSERT_TRUE(c.FlushReplication().ok());
    const auto report = c.RunAntiEntropy();
    EXPECT_EQ(report.digest_mismatches, 0u)
        << "seed " << seed << ": lossy-channel convergence must leave no "
        << "divergence for anti-entropy to find";
    EXPECT_EQ(report.repaired_replicas, 0u) << "seed " << seed;
  }
}

// --- Chaos matrix sweep (nightly hook) -------------------------------------

// One pass of the kill/rejoin/partition matrix under a lossy channel:
// crash-and-rejoin a replica, partition-and-heal another, then kill a
// primary and let the health monitor promote — all from one seed, so the
// whole run is a pure function of it. CI's default pass covers 3 seeds;
// the nightly workflow input widens it via PD2GL_REPLICATION_SWEEP_SEEDS
// (the failing seed is echoed in the assertion message either way).
void RunChaosMatrix(std::uint64_t seed) {
  SCOPED_TRACE("chaos matrix seed " + std::to_string(seed));
  GraphCluster c(LossyReplicatedConfig(seed));
  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 120, 1000, 1.0)).ok());

  // Replica kill + rejoin: the rejoining replica replays the log (or
  // bootstraps a snapshot) back to convergence.
  for (std::size_t s = 0; s < c.num_shards(); ++s) c.CrashReplica(s, 0);
  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 80, 2000, 2.0)).ok());
  for (std::size_t s = 0; s < c.num_shards(); ++s) c.RecoverReplica(s, 0);

  // Partition + heal the other replica while ingest continues.
  for (std::size_t s = 0; s < c.num_shards(); ++s) c.PartitionReplica(s, 1);
  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 80, 3000, 3.0)).ok());
  for (std::size_t s = 0; s < c.num_shards(); ++s) c.HealReplica(s, 1);

  // Primary kill mid-ingest; suspicion ages, a replica is promoted.
  const std::size_t dead = c.partitioner().ShardOf(1);
  c.CrashShard(dead);
  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 60, 4000, 4.0)).ok());
  c.AdvanceVirtualTime(500);
  c.AdvanceVirtualTime(2000);
  ASSERT_EQ(c.stats().failovers, 1u);

  ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 60, 5000, 5.0)).ok());
  ASSERT_TRUE(c.FlushReplication().ok());
  ExpectAllReplicasConverged(c, 2);
  const auto report = c.RunAntiEntropy();
  EXPECT_EQ(report.digest_mismatches, 0u)
      << "post-chaos convergence must leave nothing for anti-entropy";
  EXPECT_EQ(report.repaired_replicas, 0u);
}

TEST(ReplicationChaosTest, KillRejoinPartitionMatrixSweep) {
  std::uint64_t seeds = 3;
  if (const char* env = std::getenv("PD2GL_REPLICATION_SWEEP_SEEDS")) {
    seeds = std::strtoull(env, nullptr, 10);
    if (seeds == 0 || seeds > 64) seeds = 3;
  }
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) RunChaosMatrix(seed);
}

// --- Async shipping (bench mode) -------------------------------------------

TEST(ReplicationAsyncTest, PumpThreadConvergesUnderConcurrentIngest) {
  ClusterConfig cfg = ReplicatedConfig(2);
  cfg.replication.async_ship = true;
  GraphCluster c(cfg);
  for (int round = 0; round < 8; ++round) {
    ASSERT_TRUE(c.ApplyBatch(MakeBatch(1, 100, 1000 + round * 200,
                                       1.0 + round))
                    .ok());
  }
  ASSERT_TRUE(c.FlushReplication().ok());
  ExpectAllReplicasConverged(c, 2);
}

}  // namespace
}  // namespace platod2gl
