// Fuzz harness for the trace-context wire codec (dist/wire.cc; libFuzzer
// ABI — see fuzz_driver.cc for the GCC fallback driver).
//
// The whole input is the wire payload (a single 15-byte fixed-layout
// message — no selector byte needed). The context rides inside every v2
// QueryRequest and can also be attached out of band, so it crosses the
// same trust boundary as the serving messages and gets the same oracle:
//   * any crash, sanitizer report, or runaway allocation is a real bug;
//   * every kOk decode must re-encode to the identical bytes — the
//     layout is fixed-size, so a partial parse cannot hide;
//   * kUnsupportedVersion may only be reported when the payload actually
//     carries the 'T' tag plus a version byte, and never for the current
//     version.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "dist/wire.h"

namespace {

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_trace oracle failed: %s\n", what);
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace wire = platod2gl::wire;
  const std::string payload(reinterpret_cast<const char*>(data), size);
  platod2gl::obs::TraceContext ctx;
  const wire::DecodeResult r = wire::DecodeTraceContext(payload, &ctx);
  if (r == wire::DecodeResult::kUnsupportedVersion) {
    Require(payload.size() >= 2 && payload[0] == 'T',
            "version verdict from a tagless stub");
    Require(payload[1] != static_cast<char>(wire::kTraceWireVersion),
            "current version reported as unsupported");
    return 0;
  }
  if (r != wire::DecodeResult::kOk) return 0;
  const std::string enc = wire::EncodeTraceContext(ctx);
  Require(enc == payload, "round-trip mismatch");
  platod2gl::obs::TraceContext again;
  Require(wire::DecodeTraceContext(enc, &again) == wire::DecodeResult::kOk,
          "re-decode");
  Require(again == ctx, "re-decode value mismatch");
  return 0;
}
