// Seed-corpus generator for the fuzz harnesses in this directory.
//
// Usage: make_corpus <output-dir>
//
// Writes wire/, replication/, checkpoint/ and wal/ subdirectories of
// small, VALID
// inputs produced by the real encoders (plus a few deliberately edgy
// ones: empty, header-only, v1-without-footer). The checked-in corpora
// under tests/fuzz/corpus/ were produced by this tool; rerun it after a
// format change and commit the diff.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dist/wire.h"
#include "gnn/model.h"
#include "io/checkpoint.h"
#include "io/wal.h"
#include "serve/query_plan.h"
#include "storage/graph_store.h"

namespace {

using platod2gl::Edge;
using platod2gl::EdgeUpdate;
using platod2gl::TimedUpdate;
using platod2gl::UpdateKind;

void WriteFile(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  std::printf("  %s (%zu bytes)\n", path.c_str(), bytes.size());
}

std::string Tagged(char tag, const std::string& payload) {
  return std::string(1, tag) + payload;
}

std::string FileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f), {});
}

void MakeWireCorpus(const std::filesystem::path& dir) {
  namespace wire = platod2gl::wire;
  wire::SampleRequest req;
  req.edge_type = 1;
  req.fanout = 8;
  req.weighted = true;
  req.seeds = {1, 2, 3, 42};
  WriteFile(dir / "sample_request.bin",
            Tagged('\x00', wire::EncodeSampleRequest(req)));

  platod2gl::NeighborBatch batch;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    batch.offsets.push_back(batch.neighbors.size());
    for (std::uint64_t n = 0; n < 4; ++n) {
      batch.neighbors.push_back(seed * 100 + n);
    }
  }
  batch.offsets.push_back(batch.neighbors.size());
  WriteFile(dir / "sample_response.bin",
            Tagged('\x01', wire::EncodeSampleResponse(batch)));

  std::vector<EdgeUpdate> updates;
  updates.push_back({UpdateKind::kInsert, Edge{1, 2, 0.5, 0}});
  updates.push_back({UpdateKind::kInPlaceUpdate, Edge{1, 2, 1.5, 0}});
  updates.push_back({UpdateKind::kDelete, Edge{1, 2, 0.0, 0}});
  WriteFile(dir / "update_batch.bin",
            Tagged('\x02', wire::EncodeUpdateBatch(updates)));

  WriteFile(dir / "empty_payload.bin", "\x00");
}

void MakeReplicationCorpus(const std::filesystem::path& dir) {
  namespace wire = platod2gl::wire;

  wire::RepLogAppend append;
  append.shard = 3;
  append.entries = {
      {11, {UpdateKind::kInsert, Edge{1, 2, 1.5, 0}}},
      {12, {UpdateKind::kInPlaceUpdate, Edge{3, 4, -2.0, 1}}},
      {13, {UpdateKind::kDelete, Edge{5, 6, 0.0, 0}}}};
  WriteFile(dir / "rep_append.bin",
            Tagged('\x00', wire::EncodeRepLogAppend(append)));
  // Version negotiation is part of the format surface: seed one append
  // from a "future" peer so mutation sweeps explore the boundary between
  // kUnsupportedVersion and kMalformed.
  WriteFile(dir / "rep_append_v99.bin",
            Tagged('\x00', wire::EncodeRepLogAppend(append, 99)));
  wire::RepLogAppend empty_append;
  empty_append.shard = 0;
  WriteFile(dir / "rep_append_empty.bin",
            Tagged('\x00', wire::EncodeRepLogAppend(empty_append)));

  WriteFile(dir / "rep_ack.bin",
            Tagged('\x01', wire::EncodeRepAck({2, 1, 987654321ULL})));

  wire::RepDigest digest;
  digest.shard = 1;
  digest.through_seq = 42;
  digest.bucket_edges = {3, 0, 17, 2};
  digest.bucket_crcs = {0xDEADBEEF, 0, 0x12345678, 0xFF};
  WriteFile(dir / "rep_digest.bin",
            Tagged('\x02', wire::EncodeRepDigest(digest)));

  // A real checkpoint image as the snapshot payload, so sweeps that
  // mutate the embedded bytes exercise the CRC-checked loader boundary
  // the bootstrap path depends on.
  platod2gl::GraphStoreConfig cfg;
  cfg.num_shards = 1;
  platod2gl::GraphStore store(cfg);
  store.AddEdge(Edge{1, 2, 1.0, 0});
  store.AddEdge(Edge{2, 3, 0.5, 0});
  wire::RepSnapshot snap;
  snap.shard = 0;
  snap.covered_seq = 2;
  (void)platod2gl::SaveGraphToBytes(store, &snap.checkpoint);
  WriteFile(dir / "rep_snapshot.bin",
            Tagged('\x03', wire::EncodeRepSnapshot(snap)));

  WriteFile(dir / "empty_payload.bin", "\x02");
}

void MakeCheckpointCorpus(const std::filesystem::path& dir) {
  using platod2gl::GraphSageConfig;
  using platod2gl::GraphSageModel;
  using platod2gl::GraphStore;
  using platod2gl::GraphStoreConfig;

  const std::string scratch = (dir / "scratch.tmp").string();

  GraphStoreConfig cfg;
  cfg.num_shards = 2;
  cfg.num_relations = 2;
  GraphStore store(cfg);
  store.AddEdge(Edge{1, 2, 1.0, 0});
  store.AddEdge(Edge{1, 3, 2.0, 0});
  store.AddEdge(Edge{2, 3, 0.5, 1});
  store.attributes().SetFeatures(1, {0.1f, 0.2f});
  store.attributes().SetLabel(2, 7);
  (void)platod2gl::SaveGraph(store, scratch);
  const std::string v2 = FileBytes(scratch);
  WriteFile(dir / "graph_v2.bin", Tagged('\x00', v2));

  // Synthesise a v1 image: strip the CRC footer, patch version 2 -> 1.
  // v1 is the interesting loader surface — every record is parsed from
  // unverified bytes.
  std::string v1 = v2.substr(0, v2.size() - 4);
  v1[4] = '\x01';
  WriteFile(dir / "graph_v1.bin", Tagged('\x00', v1));

  GraphSageConfig mcfg;
  mcfg.in_dim = 4;
  mcfg.hidden_dim = 4;
  mcfg.num_classes = 2;
  GraphSageModel model(mcfg, /*seed=*/1);
  (void)platod2gl::SaveModel(model, scratch);
  WriteFile(dir / "model_v2.bin", Tagged('\x01', FileBytes(scratch)));

  std::filesystem::remove(scratch);
}

void MakeServeCorpus(const std::filesystem::path& dir) {
  namespace wire = platod2gl::wire;
  namespace serve = platod2gl::serve;

  // A full GSL-style plan: 2-hop sample, negatives, attribute gather.
  serve::QueryRequest req;
  req.tenant = 2;
  req.request_id = 77;
  req.rng_seed = 0xBEEF;
  req.trace.trace_id = 0x5EEDBEEF12345678ULL;
  req.trace.parent_span = 3;
  req.trace.flags = platod2gl::obs::TraceContext::kSampled;
  req.seeds = {1, 2, 3, 42};
  req.plan.Sample(/*fanout=*/8, /*weighted=*/true)
      .Sample(/*fanout=*/4, /*weighted=*/false, /*input=*/0)
      .NegativeSample(/*count=*/16, /*range_lo=*/0, /*range_hi=*/1000,
                      /*input=*/1)
      .Gather(/*input=*/1);
  WriteFile(dir / "query_request.bin",
            Tagged('\x00', wire::EncodeQueryRequest(req)));
  // Version negotiation is part of the format surface: a "future" client
  // seeds the boundary between kUnsupportedVersion and kMalformed, and a
  // v1 (pre-trace) client pins the still-supported back-compat layout.
  WriteFile(dir / "query_request_v99.bin",
            Tagged('\x00', wire::EncodeQueryRequest(req, 99)));
  WriteFile(dir / "query_request_v1.bin",
            Tagged('\x00', wire::EncodeQueryRequest(req, 1)));

  serve::QueryRequest tiny;
  tiny.tenant = 0;
  tiny.request_id = 1;
  tiny.rng_seed = 7;
  tiny.seeds = {5};
  tiny.plan.Traverse(/*cap=*/4);
  WriteFile(dir / "query_request_tiny.bin",
            Tagged('\x00', wire::EncodeQueryRequest(tiny)));

  serve::QueryResponse resp;
  resp.tenant = 2;
  resp.request_id = 77;
  resp.status = serve::RequestStatus::kOk;
  resp.epoch = 12;
  resp.trace_id = 0x5EEDBEEF12345678ULL;
  serve::StageOutput frontier;
  frontier.ids = {10, 11, 12, 20, 21};
  frontier.offsets = {0, 3, 5};
  serve::StageOutput feats;
  feats.feature_dim = 2;
  feats.features = {0.5f, -1.0f, 0.0f, 3.25f};
  resp.stages = {frontier, feats};
  WriteFile(dir / "query_response.bin",
            Tagged('\x01', wire::EncodeQueryResponse(resp)));
  WriteFile(dir / "query_response_v99.bin",
            Tagged('\x01', wire::EncodeQueryResponse(resp, 99)));

  serve::QueryResponse shed;
  shed.tenant = 1;
  shed.request_id = 9;
  shed.status = serve::RequestStatus::kShed;
  shed.epoch = 0;
  WriteFile(dir / "query_response_shed.bin",
            Tagged('\x01', wire::EncodeQueryResponse(shed)));
  WriteFile(dir / "query_response_v1.bin",
            Tagged('\x01', wire::EncodeQueryResponse(resp, 1)));

  WriteFile(dir / "empty_payload.bin", "\x01");
}

void MakeTraceCorpus(const std::filesystem::path& dir) {
  namespace wire = platod2gl::wire;

  platod2gl::obs::TraceContext ctx;
  ctx.trace_id = 0x123456789ABCDEF0ULL;
  ctx.parent_span = 17;
  ctx.flags = platod2gl::obs::TraceContext::kSampled;
  WriteFile(dir / "trace_context.bin", wire::EncodeTraceContext(ctx));

  platod2gl::obs::TraceContext unset;
  WriteFile(dir / "trace_context_unset.bin", wire::EncodeTraceContext(unset));

  // Version negotiation boundary seed (a "future" peer).
  WriteFile(dir / "trace_context_v99.bin", wire::EncodeTraceContext(ctx, 99));

  WriteFile(dir / "empty_payload.bin", "");
  WriteFile(dir / "tag_only.bin", "T");
}

void MakeWalCorpus(const std::filesystem::path& dir) {
  std::vector<TimedUpdate> entries;
  entries.push_back({10, {UpdateKind::kInsert, Edge{1, 2, 1.0, 0}}});
  entries.push_back({11, {UpdateKind::kInPlaceUpdate, Edge{1, 2, 2.0, 0}}});
  entries.push_back({12, {UpdateKind::kDelete, Edge{1, 2, 0.0, 0}}});

  const auto v2 = platod2gl::EncodeWal(entries, 2);
  WriteFile(dir / "wal_v2.bin",
            std::string(v2.begin(), v2.end()));
  const auto v1 = platod2gl::EncodeWal(entries, 1);
  WriteFile(dir / "wal_v1.bin",
            std::string(v1.begin(), v1.end()));
  const auto empty = platod2gl::EncodeWal({}, 2);
  WriteFile(dir / "wal_empty.bin",
            std::string(empty.begin(), empty.end()));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root = argv[1];
  for (const char* sub : {"wire", "replication", "checkpoint", "wal",
                          "serve", "trace"}) {
    std::filesystem::create_directories(root / sub);
  }
  std::printf("wire:\n");
  MakeWireCorpus(root / "wire");
  std::printf("replication:\n");
  MakeReplicationCorpus(root / "replication");
  std::printf("checkpoint:\n");
  MakeCheckpointCorpus(root / "checkpoint");
  std::printf("wal:\n");
  MakeWalCorpus(root / "wal");
  std::printf("serve:\n");
  MakeServeCorpus(root / "serve");
  std::printf("trace:\n");
  MakeTraceCorpus(root / "trace");
  return 0;
}
