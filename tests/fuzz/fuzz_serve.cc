// Fuzz harness for the serving wire decoders (dist/wire.cc; libFuzzer
// ABI — see fuzz_driver.cc for the GCC fallback driver).
//
// The first input byte selects the decoder; the rest is the wire payload.
// QueryRequest/QueryResponse are the serving layer's client-facing edge —
// the one surface that parses bytes from outside the trust boundary — so
// the oracle is the same hardening contract as the replication formats:
//   * any crash, sanitizer report, or runaway allocation is a real bug
//     (exact bounds checks before any allocation, full consumption
//     required);
//   * every kOk decode must re-encode (at the payload's own accepted
//     version — the serving protocol spans [kMinServeWireVersion,
//     kServeWireVersion]) and re-decode to the identical bytes — decode
//     is a hard reject or a full parse, never partial;
//   * kUnsupportedVersion may only be reported when the payload actually
//     contains a version byte under a recognised tag, and never for a
//     version inside the supported range.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "dist/wire.h"

namespace {

void Require(bool ok, const char* what) {
  if (!ok) {
    // Abort (not exit) so both libFuzzer and the fallback driver treat a
    // broken oracle exactly like a crash.
    std::fprintf(stderr, "fuzz_serve oracle failed: %s\n", what);
    std::abort();
  }
}

template <typename Msg, typename DecodeFn, typename EncodeFn>
void Exercise(const std::string& payload, DecodeFn decode, EncodeFn encode) {
  namespace wire = platod2gl::wire;
  Msg msg;
  const wire::DecodeResult r = decode(payload, &msg);
  if (r == wire::DecodeResult::kUnsupportedVersion) {
    Require(payload.size() >= 2, "version verdict from a tagless stub");
    const std::uint8_t v = static_cast<std::uint8_t>(payload[1]);
    Require(v < wire::kMinServeWireVersion || v > wire::kServeWireVersion,
            "supported version reported as unsupported");
    return;
  }
  if (r != wire::DecodeResult::kOk) return;
  // Re-encode at the version the payload itself carried (v1 payloads are
  // shorter — they have no trace fields — so re-encoding at the current
  // version would flag every accepted v1 message as a partial parse).
  const std::uint8_t version = static_cast<std::uint8_t>(payload[1]);
  const std::string enc = encode(msg, version);
  Msg again;
  Require(decode(enc, &again) == wire::DecodeResult::kOk, "re-decode");
  // Compare re-encoded bytes, not structs: mutated payloads can carry
  // NaN feature floats, and NaN != NaN would fail a field-wise compare
  // for a perfectly faithful round trip.
  Require(encode(again, version) == enc, "round-trip mismatch");
  Require(enc.size() == payload.size(), "partial parse slipped through");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::string payload(reinterpret_cast<const char*>(data + 1),
                            size - 1);
  namespace wire = platod2gl::wire;
  if (data[0] % 2 == 0) {
    Exercise<platod2gl::serve::QueryRequest>(
        payload, wire::DecodeQueryRequest, wire::EncodeQueryRequest);
  } else {
    Exercise<platod2gl::serve::QueryResponse>(
        payload, wire::DecodeQueryResponse, wire::EncodeQueryResponse);
  }
  return 0;
}
