// Fuzz harness for the io/checkpoint loaders (libFuzzer ABI; see
// fuzz_driver.cc for the GCC fallback driver).
//
// LoadGraph / LoadModel consume files, so each input is staged through a
// per-process scratch path. The first byte routes between the graph and
// model loaders; the rest is the file image. Both v1 (no CRC, the
// interesting surface: every record is parsed from untrusted bytes) and
// v2 (CRC-verified, mostly exercises the footer check) images flow
// through here — the corpus seeds both.
//
// Property under test: loaders reject malformed input with a Status —
// never a crash, sanitizer report, or unbounded allocation (the
// feature-length prefix is bounds-checked against the file size).
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "gnn/model.h"
#include "io/checkpoint.h"
#include "storage/graph_store.h"

namespace {

std::string ScratchPath() {
  static const std::string path = [] {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "/tmp/pd2gl_fuzz_ckpt_%ld.bin",
                  static_cast<long>(getpid()));
    return std::string(buf);
  }();
  return path;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  using namespace platod2gl;
  const std::string path = ScratchPath();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return 0;
    if (size > 1) std::fwrite(data + 1, 1, size - 1, f);
    std::fclose(f);
  }
  if (data[0] % 2 == 0) {
    GraphStoreConfig cfg;
    cfg.num_shards = 2;
    cfg.num_relations = 4;
    GraphStore store(cfg);
    (void)LoadGraph(path, &store);  // Status either way; must not crash
  } else {
    GraphSageConfig cfg;
    cfg.in_dim = 4;
    cfg.hidden_dim = 4;
    cfg.num_classes = 2;
    GraphSageModel model(cfg, /*seed=*/1);
    (void)LoadModel(path, &model);
  }
  return 0;
}
