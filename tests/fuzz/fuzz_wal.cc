// Fuzz harness for the io/wal.cc durable-WAL decoder (libFuzzer ABI; see
// fuzz_driver.cc for the GCC fallback driver).
//
// DecodeWal is a pure in-memory function, so this harness feeds it raw
// bytes directly. Oracle: anything that decodes must re-encode to a byte
// stream that decodes to the same entries; entry counts are bounded by
// the input size (the count-vs-payload check), so a successful decode of
// a small input can never produce a huge vector.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "io/wal.h"

namespace {

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_wal oracle failed: %s\n", what);
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace platod2gl;
  std::vector<TimedUpdate> entries;
  const Status s = DecodeWal(data, size, &entries);
  if (!s.ok()) return 0;
  // A decoded entry consumed at least its wire width from the input.
  Require(entries.size() <= size / 37 + 1, "entry count exceeds input size");
  const std::vector<unsigned char> enc = EncodeWal(entries);
  std::vector<TimedUpdate> again;
  Require(DecodeWal(enc.data(), enc.size(), &again).ok(), "re-decode failed");
  Require(again.size() == entries.size(), "round-trip entry count");
  for (std::size_t i = 0; i < again.size(); ++i) {
    Require(again[i].timestamp == entries[i].timestamp, "ts mismatch");
    Require(again[i].update.kind == entries[i].update.kind, "kind mismatch");
    Require(again[i].update.edge.src == entries[i].update.edge.src &&
                again[i].update.edge.dst == entries[i].update.edge.dst &&
                again[i].update.edge.type == entries[i].update.edge.type,
            "edge mismatch");
    // Weights compare bitwise: the file may legally carry NaN, for which
    // operator== is false even on identical bits.
    Require(std::memcmp(&again[i].update.edge.weight,
                        &entries[i].update.edge.weight, sizeof(double)) == 0,
            "weight bits mismatch");
  }
  return 0;
}
