// Standalone driver for the libFuzzer-ABI harnesses in this directory.
//
// The harnesses export the standard entry point
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t*, size_t);
// so the same .cc files link against clang's -fsanitize=fuzzer engine
// (cmake -DPD2GL_LIBFUZZER=ON) for real coverage-guided runs. This
// driver is the GCC-compatible fallback: it replays every corpus input
// and then runs a *deterministic* seeded mutation sweep over each one —
// byte flips, truncations, extensions, and integer-field smashes — which
// is what the CI smoke job exercises on toolchains without libFuzzer.
//
// Usage:
//   fuzz_X <corpus-file-or-dir>... [--mutate N] [--seed S] [--max-seconds T]
//
// Every execution path is a pure function of (corpus bytes, seed), so a
// crash reproduces from the same command line.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::uint64_t SplitMix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::vector<std::uint8_t> ReadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) return {};
  const std::streamsize n = f.tellg();
  f.seekg(0);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(n));
  if (n > 0) f.read(reinterpret_cast<char*>(buf.data()), n);
  return buf;
}

/// One deterministic mutant of `base` (pure function of seed material).
std::vector<std::uint8_t> Mutate(const std::vector<std::uint8_t>& base,
                                 std::uint64_t rng_seed) {
  std::uint64_t s = rng_seed;
  std::vector<std::uint8_t> m = base;
  switch (SplitMix(s) % 5) {
    case 0:  // flip 1..8 random bits
      if (!m.empty()) {
        const int flips = 1 + static_cast<int>(SplitMix(s) % 8);
        for (int i = 0; i < flips; ++i) {
          m[SplitMix(s) % m.size()] ^=
              static_cast<std::uint8_t>(1u << (SplitMix(s) % 8));
        }
      }
      break;
    case 1:  // truncate at a random point
      if (!m.empty()) m.resize(SplitMix(s) % m.size());
      break;
    case 2:  // extend with random bytes
      for (std::uint64_t i = 0, n = SplitMix(s) % 64; i < n; ++i) {
        m.push_back(static_cast<std::uint8_t>(SplitMix(s)));
      }
      break;
    case 3:  // smash an aligned 4-byte field with an extreme value
      if (m.size() >= 4) {
        const std::size_t off = (SplitMix(s) % (m.size() - 3)) & ~std::size_t{3};
        const std::uint32_t v = (SplitMix(s) % 2) ? 0xFFFFFFFFu
                                                  : static_cast<std::uint32_t>(
                                                        SplitMix(s));
        std::memcpy(m.data() + off, &v, 4);
      }
      break;
    default:  // overwrite a random run with one repeated byte
      if (!m.empty()) {
        const std::size_t off = SplitMix(s) % m.size();
        const std::size_t len = 1 + SplitMix(s) % (m.size() - off);
        std::memset(m.data() + off, static_cast<int>(SplitMix(s) % 256), len);
      }
      break;
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::uint64_t mutants_per_input = 0;
  std::uint64_t seed = 1;
  long max_seconds = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mutate" && i + 1 < argc) {
      mutants_per_input = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-seconds" && i + 1 < argc) {
      max_seconds = std::strtol(argv[++i], nullptr, 10);
    } else if (std::filesystem::is_directory(arg)) {
      std::vector<std::string> found;
      for (const auto& e : std::filesystem::directory_iterator(arg)) {
        if (e.is_regular_file()) found.push_back(e.path().string());
      }
      std::sort(found.begin(), found.end());  // deterministic order
      inputs.insert(inputs.end(), found.begin(), found.end());
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: %s <corpus-file-or-dir>... [--mutate N] [--seed S]"
                 " [--max-seconds T]\n",
                 argv[0]);
    return 2;
  }

  const std::time_t start = std::time(nullptr);
  std::uint64_t executed = 0;
  bool out_of_time = false;
  for (const std::string& path : inputs) {
    const std::vector<std::uint8_t> base = ReadFile(path);
    LLVMFuzzerTestOneInput(base.data(), base.size());
    ++executed;
    for (std::uint64_t k = 0; k < mutants_per_input && !out_of_time; ++k) {
      // Mutant identity = (file index is implicit in base bytes, seed, k):
      // reproducible without any global RNG state threading.
      std::uint64_t material = seed;
      for (const std::uint8_t b : base) material = material * 131 + b;
      const std::vector<std::uint8_t> m = Mutate(base, material + k);
      LLVMFuzzerTestOneInput(m.data(), m.size());
      ++executed;
      if (max_seconds > 0 && (executed & 0x3FF) == 0 &&
          std::time(nullptr) - start >= max_seconds) {
        out_of_time = true;
      }
    }
    if (out_of_time) break;
  }
  std::printf("fuzz-driver: executed %llu inputs (%s)\n",
              static_cast<unsigned long long>(executed),
              out_of_time ? "time budget reached" : "complete");
  return 0;
}
