// Fuzz harness for the replication wire decoders (dist/wire.cc; libFuzzer
// ABI — see fuzz_driver.cc for the GCC fallback driver).
//
// The first input byte selects the decoder; the rest is the wire payload.
// These decoders return a tri-state DecodeResult (kOk / kMalformed /
// kUnsupportedVersion), so the oracle is:
//   * any crash, sanitizer report, or runaway allocation is a real bug
//     (the hardening contract: exact bounds checks before any allocation,
//     full consumption required);
//   * every kOk decode must re-encode (at the current wire version) and
//     re-decode to the identical message — decode is a hard reject or a
//     full parse, never partial;
//   * kUnsupportedVersion may only be reported when the payload is long
//     enough to actually contain a version byte under a recognised tag —
//     negotiation is never conjured out of structural damage.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "dist/wire.h"

namespace {

void Require(bool ok, const char* what) {
  if (!ok) {
    // Abort (not exit) so both libFuzzer and the fallback driver treat a
    // broken oracle exactly like a crash.
    std::fprintf(stderr, "fuzz_replication oracle failed: %s\n", what);
    std::abort();
  }
}

template <typename Msg, typename DecodeFn, typename EncodeFn>
void Exercise(const std::string& payload, DecodeFn decode, EncodeFn encode) {
  namespace wire = platod2gl::wire;
  Msg msg;
  const wire::DecodeResult r = decode(payload, &msg);
  if (r == wire::DecodeResult::kUnsupportedVersion) {
    Require(payload.size() >= 2, "version verdict from a tagless stub");
    Require(payload[1] !=
                static_cast<char>(wire::kReplicationWireVersion),
            "current version reported as unsupported");
    return;
  }
  if (r != wire::DecodeResult::kOk) return;
  const std::string enc = encode(msg, wire::kReplicationWireVersion);
  Msg again;
  Require(decode(enc, &again) == wire::DecodeResult::kOk, "re-decode");
  // Compare re-encoded bytes, not structs: a mutated payload can carry a
  // NaN edge weight, and NaN != NaN would fail a field-wise comparison
  // for a perfectly faithful round trip.
  Require(encode(again, wire::kReplicationWireVersion) == enc,
          "round-trip mismatch");
  Require(enc.size() == payload.size(), "partial parse slipped through");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::string payload(reinterpret_cast<const char*>(data + 1),
                            size - 1);
  namespace wire = platod2gl::wire;
  switch (data[0] % 4) {
    case 0:
      Exercise<wire::RepLogAppend>(payload, wire::DecodeRepLogAppend,
                                   wire::EncodeRepLogAppend);
      break;
    case 1:
      Exercise<wire::RepAck>(payload, wire::DecodeRepAck, wire::EncodeRepAck);
      break;
    case 2:
      Exercise<wire::RepDigest>(payload, wire::DecodeRepDigest,
                                wire::EncodeRepDigest);
      break;
    default:
      Exercise<wire::RepSnapshot>(payload, wire::DecodeRepSnapshot,
                                  wire::EncodeRepSnapshot);
      break;
  }
  return 0;
}
