// Fuzz harness for the dist/wire.cc decoders (libFuzzer ABI; see
// fuzz_driver.cc for the GCC fallback driver).
//
// The first input byte selects the decoder; the rest is the wire payload.
// The decoders' hardening contract (exact bounds checks before any
// allocation, full-consumption required) means any crash, sanitizer
// report, or runaway allocation here is a real bug. As a cheap oracle,
// every successfully decoded message is re-encoded and re-decoded and
// must survive the round trip.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dist/wire.h"

namespace {

void Require(bool ok, const char* what) {
  if (!ok) {
    // Abort (not exit) so both libFuzzer and the fallback driver treat a
    // broken oracle exactly like a crash.
    std::fprintf(stderr, "fuzz_wire oracle failed: %s\n", what);
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::string payload(reinterpret_cast<const char*>(data + 1),
                            size - 1);
  using namespace platod2gl;
  switch (data[0] % 3) {
    case 0: {
      wire::SampleRequest req;
      if (wire::DecodeSampleRequest(payload, &req)) {
        const std::string enc = wire::EncodeSampleRequest(req);
        wire::SampleRequest again;
        Require(wire::DecodeSampleRequest(enc, &again), "req re-decode");
        Require(again == req, "req round-trip mismatch");
      }
      break;
    }
    case 1: {
      NeighborBatch batch;
      if (wire::DecodeSampleResponse(payload, &batch)) {
        const std::string enc = wire::EncodeSampleResponse(batch);
        NeighborBatch again;
        Require(wire::DecodeSampleResponse(enc, &again), "resp re-decode");
        Require(enc == wire::EncodeSampleResponse(again),
                "resp round-trip mismatch");
      }
      break;
    }
    default: {
      std::vector<EdgeUpdate> batch;
      if (wire::DecodeUpdateBatch(payload, &batch)) {
        const std::string enc = wire::EncodeUpdateBatch(batch);
        std::vector<EdgeUpdate> again;
        Require(wire::DecodeUpdateBatch(enc, &again), "update re-decode");
        Require(enc == wire::EncodeUpdateBatch(again),
                "update round-trip mismatch");
      }
      break;
    }
  }
  return 0;
}
