// GraphStore (heterogeneous facade) tests.
#include "storage/graph_store.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace platod2gl {
namespace {

TEST(GraphStoreTest, SingleRelationDefaults) {
  GraphStore g;
  g.AddEdge({1, 2, 0.5, 0});
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.Degree(1), 1u);
}

TEST(GraphStoreTest, RelationsAreIsolated) {
  GraphStore g(GraphStoreConfig{.num_relations = 3});
  g.AddEdge({1, 2, 0.5, 0});
  g.AddEdge({1, 3, 0.5, 1});
  g.AddEdge({1, 4, 0.5, 2});
  EXPECT_TRUE(g.HasEdge(1, 2, 0));
  EXPECT_FALSE(g.HasEdge(1, 2, 1));
  EXPECT_EQ(g.Degree(1, 0), 1u);
  EXPECT_EQ(g.Degree(1, 1), 1u);
  EXPECT_EQ(g.Degree(1, 2), 1u);
  EXPECT_EQ(g.NumEdges(), 3u);
}

TEST(GraphStoreTest, ApplyBatchMixedKinds) {
  GraphStore g(GraphStoreConfig{.num_relations = 2});
  std::vector<EdgeUpdate> batch = {
      {UpdateKind::kInsert, Edge{1, 2, 1.0, 0}},
      {UpdateKind::kInsert, Edge{1, 3, 1.0, 1}},
      {UpdateKind::kInPlaceUpdate, Edge{1, 2, 5.0, 0}},
      {UpdateKind::kDelete, Edge{1, 3, 0.0, 1}},
  };
  g.ApplyBatch(batch);
  EXPECT_NEAR(*g.EdgeWeight(1, 2, 0), 5.0, 1e-12);
  EXPECT_FALSE(g.HasEdge(1, 3, 1));
}

TEST(GraphStoreTest, SamplePerRelation) {
  GraphStore g(GraphStoreConfig{.num_relations = 2});
  g.AddEdge({1, 10, 1.0, 0});
  g.AddEdge({1, 20, 1.0, 1});
  Xoshiro256 rng(1);
  std::vector<VertexId> out;
  ASSERT_TRUE(g.SampleNeighbors(1, 20, true, rng, &out, 0));
  for (VertexId v : out) EXPECT_EQ(v, 10u);
  out.clear();
  ASSERT_TRUE(g.SampleNeighbors(1, 20, true, rng, &out, 1));
  for (VertexId v : out) EXPECT_EQ(v, 20u);
}

TEST(GraphStoreTest, AttributesAccessible) {
  GraphStore g;
  g.attributes().SetFeatures(1, {1.0f});
  g.attributes().SetLabel(1, 3);
  EXPECT_NE(g.attributes().GetFeatures(1), nullptr);
  EXPECT_EQ(g.attributes().GetLabel(1), std::optional<std::int64_t>(3));
}

TEST(GraphStoreTest, TopologyMemoryAggregatesRelations) {
  GraphStore g(GraphStoreConfig{.num_relations = 2});
  for (VertexId d = 0; d < 100; ++d) {
    g.AddEdge({1, d + 10, 1.0, 0});
    g.AddEdge({2, d + 10, 1.0, 1});
  }
  const MemoryBreakdown mem = g.TopologyMemory();
  EXPECT_GT(mem.topology_bytes, 0u);
  EXPECT_GT(mem.index_bytes, 0u);
}

TEST(GraphStoreTest, SamtreeConfigReachesRelations) {
  GraphStoreConfig cfg;
  cfg.samtree.node_capacity = 16;
  cfg.num_relations = 2;
  GraphStore g(cfg);
  EXPECT_EQ(g.topology(1).config().node_capacity, 16u);
}

}  // namespace
}  // namespace platod2gl
