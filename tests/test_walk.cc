// Random-walk engine tests: structural validity, edge-following, and the
// node2vec p/q biases realised by KnightKing-style rejection sampling.
#include "walk/random_walk.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "storage/graph_store.h"

namespace platod2gl {
namespace {

TEST(RandomWalkTest, WalksFollowEdges) {
  GraphStore g;
  // Small dense directed graph on vertices 0..9.
  Xoshiro256 gen(1);
  std::set<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 0; v < 10; ++v) {
    for (int k = 0; k < 4; ++k) {
      const VertexId u = gen.NextUint64(10);
      if (u != v && edges.insert({v, u}).second) {
        g.AddEdge({v, u, 1.0, 0});
      }
    }
  }
  RandomWalker walker(&g);
  Xoshiro256 rng(2);
  const WalkBatch walks =
      walker.Walk({0, 1, 2, 3}, {.walk_length = 20}, rng);
  ASSERT_EQ(walks.size(), 4u);
  for (const auto& walk : walks) {
    ASSERT_FALSE(walk.empty());
    for (std::size_t i = 1; i < walk.size(); ++i) {
      EXPECT_TRUE(edges.count({walk[i - 1], walk[i]}))
          << walk[i - 1] << "->" << walk[i] << " is not an edge";
    }
  }
}

TEST(RandomWalkTest, WalkLengthRespected) {
  GraphStore g;
  g.AddEdge({1, 2, 1.0, 0});
  g.AddEdge({2, 1, 1.0, 0});  // 2-cycle: walks can always continue
  RandomWalker walker(&g);
  Xoshiro256 rng(3);
  const WalkBatch walks = walker.Walk({1}, {.walk_length = 15}, rng);
  EXPECT_EQ(walks[0].size(), 15u);
  EXPECT_EQ(walks[0][0], 1u);
}

TEST(RandomWalkTest, DanglingVertexEndsWalk) {
  GraphStore g;
  g.AddEdge({1, 2, 1.0, 0});  // 2 is a sink
  RandomWalker walker(&g);
  Xoshiro256 rng(4);
  const WalkBatch walks = walker.Walk({1, 99}, {.walk_length = 10}, rng);
  EXPECT_EQ(walks[0], (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(walks[1], (std::vector<VertexId>{99}));  // seed with no edges
}

TEST(RandomWalkTest, WeightedTransitionsAreSkewed) {
  GraphStore g;
  g.AddEdge({1, 10, 9.0, 0});
  g.AddEdge({1, 20, 1.0, 0});
  RandomWalker walker(&g);
  Xoshiro256 rng(5);
  int heavy = 0;
  const int trials = 20000;
  std::vector<VertexId> seeds(trials, 1);
  const WalkBatch walks = walker.Walk(seeds, {.walk_length = 2}, rng);
  for (const auto& w : walks) heavy += (w.size() > 1 && w[1] == 10);
  EXPECT_NEAR(heavy / static_cast<double>(trials), 0.9, 0.02);
}

TEST(RandomWalkTest, UnweightedIgnoresWeights) {
  GraphStore g;
  g.AddEdge({1, 10, 9.0, 0});
  g.AddEdge({1, 20, 1.0, 0});
  RandomWalker walker(&g);
  Xoshiro256 rng(6);
  int heavy = 0;
  const int trials = 20000;
  std::vector<VertexId> seeds(trials, 1);
  const WalkBatch walks =
      walker.Walk(seeds, {.walk_length = 2, .weighted = false}, rng);
  for (const auto& w : walks) heavy += (w.size() > 1 && w[1] == 10);
  EXPECT_NEAR(heavy / static_cast<double>(trials), 0.5, 0.02);
}

// node2vec bias: on a path A <-> B <-> C with B also linked to D (D not
// adjacent to A), a walk A -> B continues to {A (return, 1/p), C/D
// (exploration, 1/q unless adjacent to A)}.
TEST(RandomWalkTest, Node2vecLowPFavorsReturning) {
  GraphStore g;
  g.AddEdge({1, 2, 1.0, 0});
  g.AddEdge({2, 1, 1.0, 0});
  g.AddEdge({2, 3, 1.0, 0});
  g.AddEdge({3, 2, 1.0, 0});
  RandomWalker walker(&g);
  Xoshiro256 rng(7);
  const int trials = 20000;
  std::vector<VertexId> seeds(trials, 1);
  // p tiny -> returning to 1 strongly preferred over exploring to 3.
  const WalkBatch walks = walker.Walk(
      seeds, {.walk_length = 3, .p = 0.05, .q = 1.0}, rng);
  int returns = 0, explores = 0;
  for (const auto& w : walks) {
    ASSERT_EQ(w.size(), 3u);
    ASSERT_EQ(w[1], 2u);  // only neighbour of 1
    (w[2] == 1 ? returns : explores) += 1;
  }
  EXPECT_GT(returns, explores * 5);
}

TEST(RandomWalkTest, Node2vecHighPAvoidsReturning) {
  GraphStore g;
  g.AddEdge({1, 2, 1.0, 0});
  g.AddEdge({2, 1, 1.0, 0});
  g.AddEdge({2, 3, 1.0, 0});
  g.AddEdge({3, 2, 1.0, 0});
  RandomWalker walker(&g);
  Xoshiro256 rng(8);
  const int trials = 20000;
  std::vector<VertexId> seeds(trials, 1);
  const WalkBatch walks = walker.Walk(
      seeds, {.walk_length = 3, .p = 20.0, .q = 1.0}, rng);
  int returns = 0, explores = 0;
  for (const auto& w : walks) {
    (w[2] == 1 ? returns : explores) += 1;
  }
  EXPECT_GT(explores, returns * 5);
}

TEST(RandomWalkTest, Node2vecLowQFavorsExploration) {
  // From B (arrived via A): C is a triangle step (C adjacent to A),
  // D is an exploration step (not adjacent to A). Low q boosts D.
  GraphStore g;
  g.AddEdge({1, 2, 1.0, 0});   // A=1, B=2
  g.AddEdge({2, 3, 1.0, 0});   // C=3 (triangle: 1->3 exists)
  g.AddEdge({1, 3, 1.0, 0});
  g.AddEdge({2, 4, 1.0, 0});   // D=4 (no 1->4 edge)
  RandomWalker walker(&g);
  Xoshiro256 rng(9);
  const int trials = 30000;
  std::vector<VertexId> seeds(trials, 1);
  const WalkBatch walks = walker.Walk(
      seeds, {.walk_length = 3, .p = 1000.0, .q = 0.1}, rng);
  int triangle = 0, exploration = 0;
  for (const auto& w : walks) {
    if (w.size() < 3 || w[1] != 2) continue;  // only the A->B prefix counts
    if (w[2] == 3) ++triangle;
    if (w[2] == 4) ++exploration;
  }
  // bias(D) / bias(C) = (1/0.1) / 1 = 10.
  EXPECT_GT(exploration, triangle * 5);
}

TEST(RandomWalkTest, FirstOrderSkipsRejectionMachinery) {
  GraphStore g;
  g.AddEdge({1, 2, 1.0, 0});
  g.AddEdge({2, 1, 1.0, 0});
  RandomWalker walker(&g);
  Xoshiro256 rng(10);
  walker.Walk({1}, {.walk_length = 11, .p = 1.0, .q = 1.0}, rng);
  // p = q = 1: exactly one candidate draw per transition.
  EXPECT_EQ(walker.last_candidate_draws(), 10u);
}

TEST(RandomWalkTest, DynamicEdgesAffectWalksImmediately) {
  GraphStore g;
  g.AddEdge({1, 2, 1.0, 0});
  RandomWalker walker(&g);
  Xoshiro256 rng(11);
  WalkBatch before = walker.Walk({1}, {.walk_length = 3}, rng);
  EXPECT_EQ(before[0].size(), 2u);  // stuck at sink 2
  g.AddEdge({2, 3, 1.0, 0});        // extend the path dynamically
  WalkBatch after = walker.Walk({1}, {.walk_length = 3}, rng);
  EXPECT_EQ(after[0], (std::vector<VertexId>{1, 2, 3}));
}


TEST(RandomWalkTest, RestartKeepsWalkNearSeed) {
  // Long path graph: without restarts a walk drifts far; with heavy
  // restarts it keeps snapping back to the seed.
  GraphStore g;
  for (VertexId v = 0; v < 200; ++v) g.AddEdge({v, v + 1, 1.0, 0});
  RandomWalker walker(&g);
  Xoshiro256 rng(12);

  const WalkBatch drift = walker.Walk({0}, {.walk_length = 100}, rng);
  EXPECT_EQ(drift[0].back(), 99u);  // deterministic path: seed + 99 steps

  const WalkBatch homing = walker.Walk(
      {0}, {.walk_length = 100, .restart_prob = 0.5}, rng);
  VertexId max_v = 0;
  int seed_visits = 0;
  for (VertexId v : homing[0]) {
    max_v = std::max(max_v, v);
    seed_visits += (v == 0);
  }
  EXPECT_LT(max_v, 30u) << "heavy restarts must bound the excursion";
  EXPECT_GT(seed_visits, 20);
}

TEST(RandomWalkTest, RestartZeroIsDefaultBehaviour) {
  GraphStore g;
  g.AddEdge({1, 2, 1.0, 0});
  g.AddEdge({2, 1, 1.0, 0});
  RandomWalker walker(&g);
  Xoshiro256 a(13), b(13);
  const WalkBatch w1 = walker.Walk({1}, {.walk_length = 9}, a);
  const WalkBatch w2 =
      walker.Walk({1}, {.walk_length = 9, .restart_prob = 0.0}, b);
  EXPECT_EQ(w1, w2);
}

}  // namespace
}  // namespace platod2gl
