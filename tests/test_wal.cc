// Unit tests for the durable WAL codec (src/io/wal.h). The adversarial
// byte-level surface is additionally hammered by tests/fuzz/fuzz_wal.cc;
// these tests pin the round-trip semantics and each documented rejection.
#include "io/wal.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/types.h"
#include "temporal/edge_log.h"

namespace {

using platod2gl::DecodeWal;
using platod2gl::Edge;
using platod2gl::EdgeUpdate;
using platod2gl::EncodeWal;
using platod2gl::LoadWal;
using platod2gl::SaveWal;
using platod2gl::Status;
using platod2gl::StatusCode;
using platod2gl::TemporalEdgeLog;
using platod2gl::TimedUpdate;
using platod2gl::UpdateKind;

std::vector<TimedUpdate> SampleEntries() {
  std::vector<TimedUpdate> entries;
  entries.push_back({10, {UpdateKind::kInsert, Edge{1, 2, 1.5, 0}}});
  entries.push_back({11, {UpdateKind::kInPlaceUpdate, Edge{1, 2, 2.5, 0}}});
  entries.push_back({11, {UpdateKind::kInsert, Edge{3, 4, 0.25, 2}}});
  entries.push_back({15, {UpdateKind::kDelete, Edge{1, 2, 0.0, 0}}});
  return entries;
}

void ExpectSameEntries(const std::vector<TimedUpdate>& a,
                       const std::vector<TimedUpdate>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].timestamp, b[i].timestamp) << i;
    EXPECT_EQ(a[i].update.kind, b[i].update.kind) << i;
    EXPECT_EQ(a[i].update.edge.src, b[i].update.edge.src) << i;
    EXPECT_EQ(a[i].update.edge.dst, b[i].update.edge.dst) << i;
    EXPECT_EQ(a[i].update.edge.type, b[i].update.edge.type) << i;
    EXPECT_DOUBLE_EQ(a[i].update.edge.weight, b[i].update.edge.weight) << i;
  }
}

TEST(WalCodecTest, RoundTripsV2) {
  const auto entries = SampleEntries();
  const auto bytes = EncodeWal(entries, 2);
  std::vector<TimedUpdate> decoded;
  ASSERT_TRUE(DecodeWal(bytes.data(), bytes.size(), &decoded).ok());
  ExpectSameEntries(entries, decoded);
}

TEST(WalCodecTest, RoundTripsV1WithoutFooter) {
  const auto entries = SampleEntries();
  const auto v1 = EncodeWal(entries, 1);
  const auto v2 = EncodeWal(entries, 2);
  EXPECT_EQ(v1.size() + 4, v2.size());  // footer is the only difference
  std::vector<TimedUpdate> decoded;
  ASSERT_TRUE(DecodeWal(v1.data(), v1.size(), &decoded).ok());
  ExpectSameEntries(entries, decoded);
}

TEST(WalCodecTest, RoundTripsEmptyLog) {
  const auto bytes = EncodeWal({}, 2);
  std::vector<TimedUpdate> decoded{SampleEntries()};  // must be cleared
  ASSERT_TRUE(DecodeWal(bytes.data(), bytes.size(), &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(WalCodecTest, RejectsBadMagicVersionAndTruncation) {
  const auto good = EncodeWal(SampleEntries(), 2);
  std::vector<TimedUpdate> out;

  auto bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeWal(bad_magic.data(), bad_magic.size(), &out).ok());

  auto bad_version = good;
  bad_version[4] = 9;
  EXPECT_FALSE(DecodeWal(bad_version.data(), bad_version.size(), &out).ok());

  // Every truncation point must be rejected, never crash or misparse.
  for (std::size_t n = 0; n < good.size(); ++n) {
    EXPECT_FALSE(DecodeWal(good.data(), n, &out).ok()) << "length " << n;
  }
}

TEST(WalCodecTest, V2RejectsAnySingleBitFlip) {
  const auto good = EncodeWal(SampleEntries(), 2);
  std::vector<TimedUpdate> out;
  for (std::size_t i = 0; i < good.size(); ++i) {
    auto corrupt = good;
    corrupt[i] ^= 0x01;
    const Status st = DecodeWal(corrupt.data(), corrupt.size(), &out);
    EXPECT_FALSE(st.ok()) << "flip at byte " << i << " slipped through";
  }
}

TEST(WalCodecTest, RejectsLyingCountWithoutAllocating) {
  // Declare 2^56 entries over a near-empty payload: the count check must
  // fire before any reserve (a crash/OOM here is the v1-checkpoint bug
  // class the fuzz targets exist for).
  auto bytes = EncodeWal({}, 1);
  const std::uint64_t lie = 1ull << 56;
  std::memcpy(bytes.data() + 8, &lie, sizeof(lie));
  std::vector<TimedUpdate> out;
  EXPECT_FALSE(DecodeWal(bytes.data(), bytes.size(), &out).ok());
}

TEST(WalCodecTest, RejectsTrailingGarbageAndBadKind) {
  auto bytes = EncodeWal(SampleEntries(), 1);
  std::vector<TimedUpdate> out;

  auto padded = bytes;
  padded.push_back(0xAB);
  EXPECT_FALSE(DecodeWal(padded.data(), padded.size(), &out).ok());

  auto bad_kind = bytes;
  bad_kind[16 + 8] = 0x7F;  // first entry's kind byte
  EXPECT_FALSE(DecodeWal(bad_kind.data(), bad_kind.size(), &out).ok());
}

class WalFileTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "pd2gl_wal_test.bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(WalFileTest, SaveThenLoadRestoresTheLog) {
  TemporalEdgeLog log;
  for (const auto& e : SampleEntries()) {
    ASSERT_TRUE(log.Append(e.timestamp, e.update).ok());
  }
  ASSERT_TRUE(SaveWal(log, path_).ok());

  TemporalEdgeLog restored;
  ASSERT_TRUE(LoadWal(path_, &restored).ok());
  ASSERT_EQ(restored.size(), log.size());
  EXPECT_EQ(restored.MinTimestamp(), log.MinTimestamp());
  EXPECT_EQ(restored.MaxTimestamp(), log.MaxTimestamp());
  EXPECT_EQ(restored.rejected(), 0u);
}

TEST_F(WalFileTest, LoadAppendsAfterExistingTail) {
  TemporalEdgeLog tail;
  ASSERT_TRUE(tail.AppendInsert(20, Edge{7, 8, 1.0, 0}).ok());
  ASSERT_TRUE(SaveWal(tail, path_).ok());

  TemporalEdgeLog log;
  ASSERT_TRUE(log.AppendInsert(15, Edge{1, 2, 1.0, 0}).ok());
  ASSERT_TRUE(LoadWal(path_, &log).ok());
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.MaxTimestamp(), 20u);
}

TEST_F(WalFileTest, LoadRejectsFileOlderThanLogTailUntouched) {
  TemporalEdgeLog old;
  ASSERT_TRUE(old.AppendInsert(5, Edge{1, 2, 1.0, 0}).ok());
  ASSERT_TRUE(SaveWal(old, path_).ok());

  TemporalEdgeLog log;
  ASSERT_TRUE(log.AppendInsert(10, Edge{3, 4, 1.0, 0}).ok());
  const Status st = LoadWal(path_, &log);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(log.size(), 1u) << "a rejected load must leave the log untouched";
  EXPECT_EQ(log.rejected(), 0u);
}

TEST_F(WalFileTest, LoadMissingFileFails) {
  TemporalEdgeLog log;
  EXPECT_FALSE(LoadWal(path_ + ".does-not-exist", &log).ok());
}

}  // namespace
