// Online serving layer tests (docs/serving.md): planner validation,
// batched-vs-solo bit-identity, the admission policy matrix, epoch-pinned
// snapshot consistency against a concurrent MicroBatcher, and SLO window
// accounting. Labels: serve;concurrency.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "dist/cluster.h"
#include "pipeline/epoch_coordinator.h"
#include "pipeline/micro_batcher.h"
#include "pipeline/update_ingestor.h"
#include "serve/admission.h"
#include "serve/executor.h"
#include "serve/query_plan.h"
#include "serve/request_batcher.h"
#include "serve/server.h"

namespace platod2gl {
namespace {

using serve::AdmissionPolicy;
using serve::GraphServer;
using serve::kPlanInputSeeds;
using serve::LoweredPlan;
using serve::OpKind;
using serve::OpSeed;
using serve::PlannerLimits;
using serve::QueryPlan;
using serve::QueryRequest;
using serve::QueryResponse;
using serve::RequestStatus;
using serve::ServeConfig;
using serve::ServeStats;
using serve::SloReport;
using serve::ValidateAndLower;

// ---------------------------------------------------------------------------
// Planner: validation / rejection matrix and lowering.
// ---------------------------------------------------------------------------

TEST(QueryPlannerTest, ValidPipelineLowers) {
  QueryPlan plan;
  plan.Sample(/*fanout=*/8)
      .Sample(/*fanout=*/4, /*weighted=*/false, /*input=*/0)
      .NegativeSample(/*count=*/16, /*range_lo=*/0, /*range_hi=*/100,
                      /*input=*/1)
      .Gather(/*input=*/1);
  LoweredPlan lowered;
  ASSERT_TRUE(ValidateAndLower(plan, /*num_seeds=*/4, {}, &lowered).ok());
  ASSERT_EQ(lowered.steps.size(), 4u);
  EXPECT_EQ(lowered.steps[0].input_slot, 0u);  // seeds
  EXPECT_EQ(lowered.steps[1].input_slot, 1u);  // op 0's frontier
  EXPECT_EQ(lowered.steps[2].input_slot, 2u);
  EXPECT_EQ(lowered.steps[3].input_slot, 2u);
  // Negative sampling is client-side; 3 ops touch shards... no: sample,
  // sample, gather = 3 rounds.
  EXPECT_EQ(lowered.rpc_rounds, 3u);
  // Frontier bound: 4 seeds -> 32 -> 128; negatives cap at 16.
  EXPECT_EQ(lowered.max_frontier, 128u);
}

TEST(QueryPlannerTest, RejectionMatrix) {
  LoweredPlan lowered;
  PlannerLimits limits;

  {  // empty plan
    QueryPlan p;
    EXPECT_FALSE(ValidateAndLower(p, 1, limits, &lowered).ok());
  }
  {  // too many ops
    QueryPlan p;
    for (std::size_t i = 0; i <= limits.max_ops; ++i) p.Sample(2);
    EXPECT_FALSE(ValidateAndLower(p, 1, limits, &lowered).ok());
  }
  {  // zero seeds / too many seeds
    QueryPlan p;
    p.Sample(2);
    EXPECT_FALSE(ValidateAndLower(p, 0, limits, &lowered).ok());
    EXPECT_FALSE(
        ValidateAndLower(p, limits.max_seeds + 1, limits, &lowered).ok());
  }
  {  // zero / oversized fanout
    QueryPlan p;
    p.Sample(0);
    EXPECT_FALSE(ValidateAndLower(p, 1, limits, &lowered).ok());
    QueryPlan q;
    q.Sample(limits.max_fanout + 1);
    EXPECT_FALSE(ValidateAndLower(q, 1, limits, &lowered).ok());
  }
  {  // forward / self input reference
    QueryPlan p;
    p.Sample(2, true, /*input=*/0);  // op 0 consuming op 0
    EXPECT_FALSE(ValidateAndLower(p, 1, limits, &lowered).ok());
    QueryPlan q;
    q.Sample(2, true, /*input=*/5);  // dangling
    EXPECT_FALSE(ValidateAndLower(q, 1, limits, &lowered).ok());
  }
  {  // gather is a sink: consuming it is invalid
    QueryPlan p;
    p.Gather().Sample(2, true, /*input=*/0);
    EXPECT_FALSE(ValidateAndLower(p, 1, limits, &lowered).ok());
  }
  {  // negative-sample: empty range / zero count / oversized count
    QueryPlan p;
    p.NegativeSample(4, 10, 10);
    EXPECT_FALSE(ValidateAndLower(p, 1, limits, &lowered).ok());
    QueryPlan q;
    q.NegativeSample(0, 0, 100);
    EXPECT_FALSE(ValidateAndLower(q, 1, limits, &lowered).ok());
    QueryPlan r;
    r.NegativeSample(limits.max_negatives + 1, 0, 100);
    EXPECT_FALSE(ValidateAndLower(r, 1, limits, &lowered).ok());
  }
  {  // edge type beyond the store's relations
    QueryPlan p;
    p.Sample(2, true, kPlanInputSeeds, /*type=*/3);
    EXPECT_FALSE(ValidateAndLower(p, 1, limits, &lowered).ok());
    PlannerLimits multi = limits;
    multi.num_relations = 4;
    EXPECT_TRUE(ValidateAndLower(p, 1, multi, &lowered).ok());
  }
  {  // frontier explosion along a sample chain
    QueryPlan p;
    p.Sample(1024).Sample(1024, true, 0).Sample(1024, true, 1);
    EXPECT_FALSE(ValidateAndLower(p, 4096, limits, &lowered).ok());
  }
}

TEST(QueryPlannerTest, OpSeedIsPureAndPerOp) {
  EXPECT_EQ(OpSeed(42, 0), OpSeed(42, 0));
  EXPECT_NE(OpSeed(42, 0), OpSeed(42, 1));
  EXPECT_NE(OpSeed(42, 0), OpSeed(43, 0));
}

// ---------------------------------------------------------------------------
// Fixture: a fault-free cluster with a known topology + features.
// ---------------------------------------------------------------------------

ClusterConfig ServeClusterConfig(std::size_t shards) {
  ClusterConfig cfg;
  cfg.num_shards = shards;
  return cfg;
}

/// 200 vertices, ~8 neighbours each, plus 2-d features on every vertex.
void PopulateGraph(GraphCluster* cluster, std::size_t num_vertices = 200) {
  for (VertexId v = 0; v < num_vertices; ++v) {
    for (std::uint64_t k = 1; k <= 8; ++k) {
      const VertexId dst = (v * 7 + k * 13) % num_vertices;
      cluster->Apply({UpdateKind::kInsert,
                      Edge{v, dst, 1.0 + static_cast<double>(k), 0}});
    }
  }
  for (VertexId v = 0; v < num_vertices; ++v) {
    const std::size_t s = cluster->partitioner().ShardOf(v);
    cluster->shard(s).store().attributes().SetFeatures(
        v, {static_cast<float>(v), static_cast<float>(v) * 0.5f});
  }
}

QueryRequest MakeSampleRequest(std::uint32_t tenant, std::uint64_t id,
                               std::uint64_t rng_seed,
                               std::vector<VertexId> seeds,
                               std::uint32_t fanout = 4) {
  QueryRequest req;
  req.tenant = tenant;
  req.request_id = id;
  req.rng_seed = rng_seed;
  req.seeds = std::move(seeds);
  req.plan.Sample(fanout);
  return req;
}

// ---------------------------------------------------------------------------
// Determinism: a served plan is bit-identical to direct cluster calls.
// ---------------------------------------------------------------------------

TEST(ServeDeterminismTest, BatchedSampleIsBitIdenticalToSoloCalls) {
  GraphCluster cluster(ServeClusterConfig(4));
  PopulateGraph(&cluster);
  EpochCoordinator epochs;
  ServeConfig cfg;
  cfg.batcher.max_batch = 8;  // all 8 requests coalesce into ONE batch
  GraphServer server(&cluster, &epochs, cfg);

  std::vector<QueryRequest> requests;
  for (std::uint64_t i = 0; i < 8; ++i) {
    requests.push_back(MakeSampleRequest(i % 4, i, /*rng_seed=*/1000 + i,
                                         {i * 3, i * 3 + 1, i * 3 + 2}));
  }
  for (const QueryRequest& req : requests) {
    ASSERT_TRUE(server.Submit(req, /*now_us=*/0).ok());
  }
  server.Drain(/*now_us=*/0);
  std::vector<QueryResponse> responses = server.TakeCompleted();
  ASSERT_EQ(responses.size(), 8u);
  EXPECT_EQ(server.Stats().batches, 1u) << "size trigger formed one batch";

  for (const QueryResponse& resp : responses) {
    const QueryRequest& req = requests[resp.request_id];
    // The exact call the executor's batched round must reproduce: same
    // derived per-op seed, same fanout, weighted.
    const SampleReport direct = cluster.SampleNeighborsChecked(
        req.seeds, /*fanout=*/4, /*weighted=*/true,
        OpSeed(req.rng_seed, 0), /*type=*/0);
    ASSERT_EQ(resp.stages.size(), 1u);
    EXPECT_EQ(resp.stages[0].ids, direct.batch.neighbors)
        << "request " << resp.request_id;
    ASSERT_EQ(resp.stages[0].offsets.size(), direct.batch.offsets.size());
    for (std::size_t i = 0; i < direct.batch.offsets.size(); ++i) {
      EXPECT_EQ(resp.stages[0].offsets[i], direct.batch.offsets[i]);
    }
    EXPECT_EQ(resp.status, RequestStatus::kOk);
  }
}

TEST(ServeDeterminismTest, ResultsIndependentOfBatchComposition) {
  // The same request served solo and inside a crowd of unrelated
  // requests must produce identical stages.
  const QueryRequest probe =
      MakeSampleRequest(0, /*id=*/99, /*rng_seed=*/7, {1, 2, 3});

  auto serve_once = [&](std::size_t crowd) -> std::vector<serve::StageOutput> {
    GraphCluster cluster(ServeClusterConfig(4));
    PopulateGraph(&cluster);
    EpochCoordinator epochs;
    ServeConfig cfg;
    cfg.batcher.max_batch = 32;
    GraphServer server(&cluster, &epochs, cfg);
    for (std::size_t i = 0; i < crowd; ++i) {
      EXPECT_TRUE(
          server
              .Submit(MakeSampleRequest(1, i, /*rng_seed=*/500 + i,
                                        {i * 5, i * 5 + 4}),
                      0)
              .ok());
    }
    EXPECT_TRUE(server.Submit(probe, 0).ok());
    server.Drain(0);
    for (QueryResponse& resp : server.TakeCompleted()) {
      if (resp.request_id == 99) return resp.stages;
    }
    ADD_FAILURE() << "probe response missing";
    return std::vector<serve::StageOutput>{};
  };

  const auto solo = serve_once(0);
  const auto crowded = serve_once(12);
  EXPECT_EQ(solo, crowded);
}

TEST(ServeExecutorTest, MultiOpPlanProducesConsistentStages) {
  GraphCluster cluster(ServeClusterConfig(2));
  PopulateGraph(&cluster);
  EpochCoordinator epochs;
  GraphServer server(&cluster, &epochs, {});

  QueryRequest req;
  req.tenant = 0;
  req.request_id = 5;
  req.rng_seed = 11;
  req.seeds = {1, 2};
  req.plan.Sample(/*fanout=*/3)
      .NegativeSample(/*count=*/8, /*range_lo=*/1000, /*range_hi=*/2000,
                      /*input=*/0)
      .Gather(/*input=*/0);
  ASSERT_TRUE(server.Submit(req, 0).ok());
  server.Drain(0);
  auto responses = server.TakeCompleted();
  ASSERT_EQ(responses.size(), 1u);
  const QueryResponse& resp = responses[0];
  ASSERT_EQ(resp.stages.size(), 3u);
  EXPECT_EQ(resp.status, RequestStatus::kOk);

  // Stage 0: 3 draws per seed.
  EXPECT_EQ(resp.stages[0].ids.size(), 6u);
  // Stage 1: negatives inside the range, avoiding stage 0's frontier.
  ASSERT_EQ(resp.stages[1].ids.size(), 8u);
  for (const VertexId v : resp.stages[1].ids) {
    EXPECT_GE(v, 1000u);
    EXPECT_LT(v, 2000u);
  }
  // Stage 2: one 2-d feature row per stage-0 vertex, matching the store.
  EXPECT_EQ(resp.stages[2].feature_dim, 2u);
  ASSERT_EQ(resp.stages[2].features.size(), 12u);
  for (std::size_t i = 0; i < resp.stages[0].ids.size(); ++i) {
    const float want = static_cast<float>(resp.stages[0].ids[i]);
    EXPECT_EQ(resp.stages[2].features[i * 2], want);
    EXPECT_EQ(resp.stages[2].features[i * 2 + 1], want * 0.5f);
  }
  // The pinned epoch is stamped.
  EXPECT_EQ(resp.epoch, 0u);
}

// ---------------------------------------------------------------------------
// Admission: the policy matrix.
// ---------------------------------------------------------------------------

TEST(AdmissionPolicyTest, RejectPolicyWindowAndQuota) {
  GraphCluster cluster(ServeClusterConfig(2));
  PopulateGraph(&cluster);
  EpochCoordinator epochs;
  ServeConfig cfg;
  cfg.admission.max_in_flight = 3;
  cfg.admission.tenant_quota = 2;
  cfg.admission.policy = AdmissionPolicy::kReject;
  cfg.batcher.max_batch = 64;  // nothing dispatches until we say so
  GraphServer server(&cluster, &epochs, cfg);

  // Tenant 0 fills its quota of 2.
  ASSERT_TRUE(server.Submit(MakeSampleRequest(0, 1, 1, {1}), 0).ok());
  ASSERT_TRUE(server.Submit(MakeSampleRequest(0, 2, 2, {2}), 0).ok());
  const Status quota = server.Submit(MakeSampleRequest(0, 3, 3, {3}), 0);
  EXPECT_EQ(quota.code(), StatusCode::kResourceExhausted);

  // Tenant 1 still fits (window 3), then the window is full for everyone.
  ASSERT_TRUE(server.Submit(MakeSampleRequest(1, 4, 4, {4}), 0).ok());
  const Status window = server.Submit(MakeSampleRequest(2, 5, 5, {5}), 0);
  EXPECT_EQ(window.code(), StatusCode::kResourceExhausted);

  const ServeStats stats = server.Stats();
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.admission.quota_rejects, 1u);
  EXPECT_EQ(stats.admission.window_rejects, 1u);
  EXPECT_EQ(stats.admission.in_flight, 3u);

  // Slots free once the work retires; the same tenant is admitted again.
  server.Drain(0);
  EXPECT_TRUE(server.Submit(MakeSampleRequest(0, 6, 6, {6}), 1000000).ok());
}

TEST(AdmissionPolicyTest, ShedOldestEvictsTheLongestWaiting) {
  GraphCluster cluster(ServeClusterConfig(2));
  PopulateGraph(&cluster);
  EpochCoordinator epochs;
  ServeConfig cfg;
  cfg.admission.max_in_flight = 2;
  cfg.admission.tenant_quota = 2;
  cfg.admission.policy = AdmissionPolicy::kShedOldest;
  cfg.batcher.max_batch = 64;
  GraphServer server(&cluster, &epochs, cfg);

  ASSERT_TRUE(server.Submit(MakeSampleRequest(0, 1, 1, {1}), 10).ok());
  ASSERT_TRUE(server.Submit(MakeSampleRequest(1, 2, 2, {2}), 20).ok());
  // Window full; the new arrival sheds request 1 (the longest waiting).
  ASSERT_TRUE(server.Submit(MakeSampleRequest(1, 3, 3, {3}), 30).ok());

  const ServeStats stats = server.Stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.batcher.shed, 1u);

  auto completed = server.TakeCompleted();
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0].request_id, 1u);
  EXPECT_EQ(completed[0].status, RequestStatus::kShed);
  EXPECT_EQ(completed[0].latency_us, 20u);  // arrived 10, shed at 30
  EXPECT_TRUE(completed[0].stages.empty());

  // The survivors still execute.
  server.Drain(1000);
  completed = server.TakeCompleted();
  ASSERT_EQ(completed.size(), 2u);
  for (const QueryResponse& r : completed) {
    EXPECT_EQ(r.status, RequestStatus::kOk);
  }
}

TEST(AdmissionPolicyTest, ShedOutcomesAreAPureFunctionOfArrivalOrder) {
  // The same (seed, arrival order) must shed the same requests with the
  // same statuses, twice.
  auto run = [] {
    GraphCluster cluster(ServeClusterConfig(2));
    PopulateGraph(&cluster);
    EpochCoordinator epochs;
    ServeConfig cfg;
    cfg.admission.max_in_flight = 3;
    cfg.admission.tenant_quota = 2;
    cfg.admission.policy = AdmissionPolicy::kShedOldest;
    cfg.batcher.max_batch = 64;
    GraphServer server(&cluster, &epochs, cfg);
    for (std::uint64_t i = 0; i < 12; ++i) {
      (void)server.Submit(
          MakeSampleRequest(i % 3, i, /*rng_seed=*/i * 17, {i}), i * 10);
    }
    server.Drain(100000);
    std::vector<std::pair<std::uint64_t, RequestStatus>> outcome;
    for (const QueryResponse& r : server.TakeCompleted()) {
      outcome.emplace_back(r.request_id, r.status);
    }
    return outcome;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
  std::size_t shed = 0;
  for (const auto& [id, status] : a) {
    if (status == RequestStatus::kShed) ++shed;
  }
  EXPECT_GT(shed, 0u) << "the overload actually shed something";
}

TEST(AdmissionPolicyTest, BlockPolicyWaitsForARetiredSlot) {
  GraphCluster cluster(ServeClusterConfig(2));
  PopulateGraph(&cluster);
  EpochCoordinator epochs;
  ServeConfig cfg;
  cfg.admission.max_in_flight = 1;
  cfg.admission.tenant_quota = 1;
  cfg.admission.policy = AdmissionPolicy::kBlock;
  cfg.batcher.max_batch = 1;  // dispatch immediately on pump
  GraphServer server(&cluster, &epochs, cfg);

  ASSERT_TRUE(server.Submit(MakeSampleRequest(0, 1, 1, {1}), 0).ok());
  server.Pump(0);  // request 1 is now in flight, window full

  Status blocked_result = Status::Ok();
  std::thread submitter([&] {
    blocked_result = server.Submit(MakeSampleRequest(1, 2, 2, {2}), 0);
  });
  // Retiring request 1 (the virtual clock passes its completion) frees
  // the slot and wakes the submitter.
  while (server.Stats().admission.blocked_waits == 0) {
    std::this_thread::yield();
  }
  server.Pump(/*now_us=*/10000000);
  submitter.join();
  ASSERT_TRUE(blocked_result.ok());

  server.Drain(20000000);
  const auto completed = server.TakeCompleted();
  ASSERT_EQ(completed.size(), 2u);
  EXPECT_EQ(server.Stats().admission.blocked_waits, 1u);
}

TEST(AdmissionPolicyTest, CloseRefusesNewWorkButDrainsQueued) {
  GraphCluster cluster(ServeClusterConfig(2));
  PopulateGraph(&cluster);
  EpochCoordinator epochs;
  ServeConfig cfg;
  cfg.batcher.max_batch = 64;
  GraphServer server(&cluster, &epochs, cfg);

  ASSERT_TRUE(server.Submit(MakeSampleRequest(0, 1, 1, {1}), 0).ok());
  server.Close();
  const Status after = server.Submit(MakeSampleRequest(0, 2, 2, {2}), 0);
  EXPECT_EQ(after.code(), StatusCode::kUnavailable);

  server.Drain(0);
  const auto completed = server.TakeCompleted();
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0].request_id, 1u);
  EXPECT_EQ(completed[0].status, RequestStatus::kOk);
}

TEST(AdmissionPolicyTest, InvalidRequestsAreCountedNotAdmitted) {
  GraphCluster cluster(ServeClusterConfig(2));
  EpochCoordinator epochs;
  GraphServer server(&cluster, &epochs, {});

  QueryRequest bad_tenant = MakeSampleRequest(99, 1, 1, {1});
  EXPECT_EQ(server.Submit(bad_tenant, 0).code(),
            StatusCode::kInvalidArgument);

  QueryRequest bad_plan;
  bad_plan.tenant = 0;
  bad_plan.seeds = {1};
  EXPECT_EQ(server.Submit(bad_plan, 0).code(), StatusCode::kInvalidArgument);

  const ServeStats stats = server.Stats();
  EXPECT_EQ(stats.invalid, 2u);
  EXPECT_EQ(stats.admission.in_flight, 0u);
  EXPECT_EQ(stats.batcher.queued, 0u);
}

// ---------------------------------------------------------------------------
// Cross-request batching: fewer rounds, same answers.
// ---------------------------------------------------------------------------

TEST(RequestBatchingTest, CoalescedBatchSharesRpcRounds) {
  GraphCluster cluster(ServeClusterConfig(4));
  PopulateGraph(&cluster);
  EpochCoordinator epochs;
  ServeConfig cfg;
  cfg.batcher.max_batch = 16;
  GraphServer server(&cluster, &epochs, cfg);

  for (std::uint64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        server.Submit(MakeSampleRequest(i % 4, i, i, {i, i + 50}), 0).ok());
  }
  server.Drain(0);
  const ServeStats stats = server.Stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_requests, 16u);
  // One sample op each, all coalesced into ONE cluster round — not 16.
  EXPECT_EQ(stats.rpc_rounds, 1u);
  EXPECT_EQ(server.TakeCompleted().size(), 16u);
}

TEST(RequestBatchingTest, DeadlineFormsPartialBatch) {
  GraphCluster cluster(ServeClusterConfig(2));
  PopulateGraph(&cluster);
  EpochCoordinator epochs;
  ServeConfig cfg;
  cfg.batcher.max_batch = 32;
  cfg.batcher.window_us = 200;
  GraphServer server(&cluster, &epochs, cfg);

  ASSERT_TRUE(server.Submit(MakeSampleRequest(0, 1, 1, {1}), 0).ok());
  EXPECT_EQ(server.Pump(100), 0u) << "formation window still open";
  EXPECT_EQ(server.Pump(200), 1u) << "deadline reached: batch of one";
  server.Drain(1000000);
  EXPECT_EQ(server.TakeCompleted().size(), 1u);
}

// ---------------------------------------------------------------------------
// Epoch pinning: one consistent G^(t) per batch while a MicroBatcher
// mutates the graph.
// ---------------------------------------------------------------------------

TEST(ServeEpochConsistencyTest, PlanSeesOneSnapshotUnderConcurrentMutation) {
  // One shard so vertex 1 is local; the serving plan reads vertex 1's
  // single neighbour twice (two traverse ops in two separate cluster
  // rounds). A MicroBatcher concurrently toggles that neighbour between
  // 2 and 3 — atomically, under the shared EpochCoordinator's write
  // barrier. If the executor's epoch pin ever lapsed between rounds, a
  // response could see both values.
  GraphCluster cluster(ServeClusterConfig(1));
  cluster.Apply({UpdateKind::kInsert, Edge{1, 2, 1.0, 0}});

  EpochCoordinator epochs;
  ThreadPool pool(2);
  UpdateIngestor ingestor(IngestorConfig{.num_shards = 1});
  MicroBatcher mutator(&cluster.shard(0).store(), &pool, &ingestor, &epochs,
                       /*log=*/nullptr);

  GraphServer server(&cluster, &epochs, {});

  std::thread writer([&] {
    VertexId cur = 2;
    for (std::uint64_t i = 0; i < 400; ++i) {
      const VertexId next = (cur == 2) ? 3 : 2;
      (void)ingestor.Offer(
          {2 * i + 1, {UpdateKind::kDelete, Edge{1, cur, 0.0, 0}}});
      (void)ingestor.Offer(
          {2 * i + 2, {UpdateKind::kInsert, Edge{1, next, 1.0, 0}}});
      mutator.PumpOnce(/*force=*/true);  // both updates in ONE micro-batch
      cur = next;
    }
  });

  for (std::uint64_t i = 0; i < 200; ++i) {
    QueryRequest req;
    req.tenant = 0;
    req.request_id = i;
    req.rng_seed = i;
    req.seeds = {1};
    req.plan.Traverse(/*cap=*/4).Traverse(/*cap=*/4);
    ASSERT_TRUE(server.Submit(req, i).ok());
    server.Drain(i);
    for (const QueryResponse& resp : server.TakeCompleted()) {
      ASSERT_EQ(resp.stages.size(), 2u);
      ASSERT_EQ(resp.stages[0].ids.size(), 1u)
          << "toggle applied atomically: always exactly one neighbour";
      EXPECT_EQ(resp.stages[0].ids, resp.stages[1].ids)
          << "both rounds read the same pinned snapshot";
    }
  }
  writer.join();
}

// ---------------------------------------------------------------------------
// SLO tracking: interval windows over the virtual-latency histograms.
// ---------------------------------------------------------------------------

TEST(SloTrackingTest, WindowsIsolateAndFlagViolations) {
  GraphCluster cluster(ServeClusterConfig(2));
  PopulateGraph(&cluster);
  EpochCoordinator epochs;
  ServeConfig cfg;
  cfg.batcher.max_batch = 4;
  cfg.slo_target_p99_us = 2000;
  GraphServer server(&cluster, &epochs, cfg);

  // Window 1: requests served immediately — low latency.
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(server.Submit(MakeSampleRequest(0, i, i, {i}), 0).ok());
  }
  server.Drain(0);
  const SloReport w1 = server.EndSloWindow();
  EXPECT_EQ(w1.count, 4u);
  EXPECT_GT(w1.p99_us, 0.0);
  EXPECT_FALSE(w1.violated) << "p99 " << w1.p99_us;

  // Window 2: requests sit queued for 1s of virtual time before the
  // drain — far past the 2ms target.
  for (std::uint64_t i = 10; i < 14; ++i) {
    ASSERT_TRUE(server.Submit(MakeSampleRequest(1, i, i, {i}), 1000).ok());
  }
  server.Drain(1001000);
  const SloReport w2 = server.EndSloWindow();
  EXPECT_EQ(w2.count, 4u) << "the window sees only its own completions";
  EXPECT_GT(w2.p99_us, 500000.0);
  EXPECT_TRUE(w2.violated);

  const ServeStats stats = server.Stats();
  EXPECT_EQ(stats.slo_windows, 2u);
  EXPECT_EQ(stats.slo_violations, 1u);

  // Per-tenant histograms saw their own tenants only.
  EXPECT_EQ(server.tenant_latency(0)->Count(), 4u);
  EXPECT_EQ(server.tenant_latency(1)->Count(), 4u);
  EXPECT_EQ(server.tenant_latency(2)->Count(), 0u);
  EXPECT_EQ(server.tenant_latency(99), nullptr);
  EXPECT_EQ(server.latency().Count(), 8u);
}

TEST(SloTrackingTest, ShedRequestsStayOutOfLatencyHistograms) {
  GraphCluster cluster(ServeClusterConfig(2));
  PopulateGraph(&cluster);
  EpochCoordinator epochs;
  ServeConfig cfg;
  cfg.admission.max_in_flight = 1;
  cfg.admission.policy = AdmissionPolicy::kShedOldest;
  cfg.batcher.max_batch = 64;
  GraphServer server(&cluster, &epochs, cfg);

  ASSERT_TRUE(server.Submit(MakeSampleRequest(0, 1, 1, {1}), 0).ok());
  ASSERT_TRUE(server.Submit(MakeSampleRequest(1, 2, 2, {2}), 5).ok());
  EXPECT_EQ(server.Stats().shed, 1u);
  server.Drain(100);
  EXPECT_EQ(server.latency().Count(), 1u)
      << "only the served request is an SLO sample";
  EXPECT_EQ(server.Stats().completed, 2u);
}

// ---------------------------------------------------------------------------
// Degradation visibility: a crashed shard yields kDegraded, not a hang.
// ---------------------------------------------------------------------------

TEST(ServeDegradationTest, CrashedShardDegradesResponses) {
  GraphCluster cluster(ServeClusterConfig(2));
  PopulateGraph(&cluster);
  EpochCoordinator epochs;
  GraphServer server(&cluster, &epochs, {});

  cluster.CrashShard(0);
  // Seeds spread over both shards: some frontier rows degrade.
  QueryRequest req;
  req.tenant = 0;
  req.request_id = 1;
  req.rng_seed = 3;
  req.seeds = {0, 1, 2, 3, 4, 5, 6, 7};
  req.plan.Traverse(/*cap=*/4);
  ASSERT_TRUE(server.Submit(req, 0).ok());
  server.Drain(0);
  const auto completed = server.TakeCompleted();
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0].status, RequestStatus::kDegraded);
  EXPECT_EQ(server.Stats().degraded, 1u);
}

}  // namespace
}  // namespace platod2gl
