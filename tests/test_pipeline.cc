// Streaming-pipeline tests: backpressure policy matrix, coalescing
// correctness (the folded batch must be state-equivalent to the raw
// stream for ANY prior store state), end-to-end determinism (the live
// store after the pipeline is bit-identical to a sequential
// TemporalEdgeLog replay), and a TSan-targeted producers-vs-trainer
// stress run proving epoch snapshot consistency.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "gnn/model.h"
#include "gnn/trainer.h"
#include "pipeline/continuous_trainer.h"
#include "pipeline/epoch_coordinator.h"
#include "pipeline/micro_batcher.h"
#include "pipeline/update_ingestor.h"
#include "storage/graph_store.h"
#include "temporal/edge_log.h"

namespace platod2gl {
namespace {

// ---------------------------------------------------------------------------
// Helpers

/// Every live edge as (type, src, dst, weight), canonically sorted.
/// Weights are compared bit-for-bit (same op sequence -> same doubles).
using CanonEdge = std::tuple<EdgeType, VertexId, VertexId, double>;

std::vector<CanonEdge> CanonicalEdges(const GraphStore& g) {
  std::vector<CanonEdge> out;
  for (std::size_t rel = 0; rel < g.num_relations(); ++rel) {
    const EdgeType type = static_cast<EdgeType>(rel);
    std::vector<VertexId> sources;
    g.topology(type).ForEachSource(
        [&](VertexId src, const Samtree&) { sources.push_back(src); });
    for (VertexId src : sources) {
      for (const auto& [dst, w] : g.topology(type).Neighbors(src)) {
        out.emplace_back(type, src, dst, w);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// A deterministic mixed update trace with monotone event time: inserts,
/// weight updates and deletes over a small vertex universe (so the same
/// edge is hit repeatedly — the coalescer's workload).
std::vector<TimedUpdate> MakeTrace(std::size_t n, std::uint64_t seed,
                                   std::size_t universe = 64,
                                   std::size_t num_relations = 1) {
  Xoshiro256 rng(seed);
  std::vector<TimedUpdate> trace;
  trace.reserve(n);
  std::uint64_t ts = 1;
  for (std::size_t i = 0; i < n; ++i) {
    ts += rng.NextUint64(3);  // non-decreasing, with repeats
    EdgeUpdate u;
    const std::uint64_t roll = rng.NextUint64(10);
    u.kind = roll < 5   ? UpdateKind::kInsert
             : roll < 8 ? UpdateKind::kInPlaceUpdate
                        : UpdateKind::kDelete;
    u.edge.src = rng.NextUint64(universe);
    u.edge.dst = rng.NextUint64(universe);
    u.edge.weight = 1.0 + static_cast<double>(rng.NextUint64(1000));
    u.edge.type = static_cast<EdgeType>(rng.NextUint64(num_relations));
    trace.push_back(TimedUpdate{ts, u});
  }
  return trace;
}

/// The full pipeline wired around one graph store.
struct Pipeline {
  explicit Pipeline(IngestorConfig icfg = {}, MicroBatcherConfig bcfg = {},
                    GraphStoreConfig gcfg = {}, std::size_t threads = 4)
      : graph(gcfg),
        pool(threads),
        ingestor(icfg),
        batcher(&graph, &pool, &ingestor, &epochs, &log, bcfg) {}

  GraphStore graph;
  ThreadPool pool;
  UpdateIngestor ingestor;
  EpochCoordinator epochs;
  TemporalEdgeLog log;
  MicroBatcher batcher;
};

// ---------------------------------------------------------------------------
// Backpressure policy matrix

TEST(IngestorBackpressure, RejectPolicyFailsFastWhenFull) {
  UpdateIngestor ing(IngestorConfig{.num_shards = 1,
                                    .shard_capacity = 3,
                                    .policy = BackpressurePolicy::kReject});
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(ing.OfferInsert(i, {1, i, 1.0, 0}).ok());
  }
  const Status full = ing.OfferInsert(3, {1, 99, 1.0, 0});
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ing.Stats().rejected, 1u);
  EXPECT_EQ(ing.QueueDepth(), 3u);

  // Draining makes room again.
  std::vector<IngestedUpdate> out;
  EXPECT_EQ(ing.DrainAll(&out), 3u);
  EXPECT_TRUE(ing.OfferInsert(4, {1, 100, 1.0, 0}).ok());
}

TEST(IngestorBackpressure, DropOldestEvictsAndCounts) {
  UpdateIngestor ing(
      IngestorConfig{.num_shards = 1,
                     .shard_capacity = 3,
                     .policy = BackpressurePolicy::kDropOldest});
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(ing.OfferInsert(i, {1, i, 1.0, 0}).ok());
  }
  EXPECT_EQ(ing.Stats().dropped, 2u);
  EXPECT_EQ(ing.Stats().accepted, 5u);

  std::vector<IngestedUpdate> out;
  EXPECT_EQ(ing.DrainAll(&out), 3u);
  // The oldest two (dst 0, 1) were evicted; 2, 3, 4 survive in order.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].update.update.edge.dst, 2u);
  EXPECT_EQ(out[1].update.update.edge.dst, 3u);
  EXPECT_EQ(out[2].update.update.edge.dst, 4u);
}

TEST(IngestorBackpressure, BlockPolicyWaitsForDrain) {
  UpdateIngestor ing(IngestorConfig{.num_shards = 1,
                                    .shard_capacity = 2,
                                    .policy = BackpressurePolicy::kBlock});
  ASSERT_TRUE(ing.OfferInsert(1, {1, 1, 1.0, 0}).ok());
  ASSERT_TRUE(ing.OfferInsert(2, {1, 2, 1.0, 0}).ok());

  std::atomic<bool> offered{false};
  std::thread producer([&] {
    const Status s = ing.OfferInsert(3, {1, 3, 1.0, 0});  // blocks: full
    EXPECT_TRUE(s.ok());
    offered.store(true);
  });
  // The producer cannot complete until the consumer drains.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(offered.load());

  std::vector<IngestedUpdate> out;
  ing.DrainAll(&out);
  producer.join();
  EXPECT_TRUE(offered.load());
  out.clear();
  EXPECT_EQ(ing.DrainAll(&out), 1u);
  EXPECT_EQ(out[0].update.update.edge.dst, 3u);
}

TEST(IngestorBackpressure, CloseUnblocksProducersWithUnavailable) {
  UpdateIngestor ing(IngestorConfig{.num_shards = 1,
                                    .shard_capacity = 1,
                                    .policy = BackpressurePolicy::kBlock});
  ASSERT_TRUE(ing.OfferInsert(1, {1, 1, 1.0, 0}).ok());
  std::thread producer([&] {
    const Status s = ing.OfferInsert(2, {1, 2, 1.0, 0});
    EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ing.Close();
  producer.join();
  // Closed ingestor refuses new offers but still drains what it holds.
  EXPECT_EQ(ing.OfferInsert(3, {1, 3, 1.0, 0}).code(),
            StatusCode::kUnavailable);
  std::vector<IngestedUpdate> out;
  EXPECT_EQ(ing.DrainAll(&out), 1u);
}

TEST(IngestorTest, WatermarkTracksNewestAcceptedTimestamp) {
  UpdateIngestor ing;
  EXPECT_EQ(ing.watermark(), 0u);
  ASSERT_TRUE(ing.OfferInsert(10, {1, 2, 1.0, 0}).ok());
  ASSERT_TRUE(ing.OfferInsert(7, {3, 4, 1.0, 0}).ok());  // older: no move
  EXPECT_EQ(ing.watermark(), 10u);
  ASSERT_TRUE(ing.OfferInsert(25, {5, 6, 1.0, 0}).ok());
  EXPECT_EQ(ing.watermark(), 25u);
}

TEST(IngestorTest, InvalidRelationRefusedAtTheDoor) {
  UpdateIngestor ing(IngestorConfig{.num_relations = 2});
  EXPECT_TRUE(ing.OfferInsert(1, {1, 2, 1.0, 1}).ok());
  EXPECT_EQ(ing.OfferInsert(2, {1, 2, 1.0, 2}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ing.Stats().invalid, 1u);
}

// ---------------------------------------------------------------------------
// Coalescing

EdgeUpdate Op(UpdateKind kind, VertexId src, VertexId dst, Weight w) {
  return EdgeUpdate{kind, Edge{src, dst, w, 0}};
}

TEST(CoalesceTest, FoldRules) {
  using K = UpdateKind;
  // (insert w1, update w2) -> insert w2: the edge exists after the pair
  // with weight w2, whatever the prior state was.
  {
    std::vector<EdgeUpdate> b{Op(K::kInsert, 1, 2, 1.0),
                              Op(K::kInPlaceUpdate, 1, 2, 5.0)};
    EXPECT_EQ(MicroBatcher::Coalesce(&b), 1u);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0].kind, K::kInsert);
    EXPECT_EQ(b[0].edge.weight, 5.0);
  }
  // (insert, delete) -> delete; (delete, insert w) -> insert w.
  {
    std::vector<EdgeUpdate> b{Op(K::kInsert, 1, 2, 1.0),
                              Op(K::kDelete, 1, 2, 0.0)};
    MicroBatcher::Coalesce(&b);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0].kind, K::kDelete);
  }
  {
    std::vector<EdgeUpdate> b{Op(K::kDelete, 1, 2, 0.0),
                              Op(K::kInsert, 1, 2, 7.0)};
    MicroBatcher::Coalesce(&b);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0].kind, K::kInsert);
    EXPECT_EQ(b[0].edge.weight, 7.0);
  }
  // (delete, update) -> delete: the update hit a non-existent edge.
  {
    std::vector<EdgeUpdate> b{Op(K::kDelete, 1, 2, 0.0),
                              Op(K::kInPlaceUpdate, 1, 2, 9.0)};
    MicroBatcher::Coalesce(&b);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0].kind, K::kDelete);
  }
  // Different edges never fold; first-occurrence order is kept.
  {
    std::vector<EdgeUpdate> b{Op(K::kInsert, 1, 2, 1.0),
                              Op(K::kInsert, 3, 4, 1.0),
                              Op(K::kInsert, 1, 2, 2.0)};
    EXPECT_EQ(MicroBatcher::Coalesce(&b), 1u);
    ASSERT_EQ(b.size(), 2u);
    EXPECT_EQ(b[0].edge.src, 1u);
    EXPECT_EQ(b[0].edge.weight, 2.0);
    EXPECT_EQ(b[1].edge.src, 3u);
  }
}

TEST(CoalesceTest, StateEquivalentForAnyPriorState) {
  // Property check: for random op runs over a tiny universe, applying
  // the folded batch leaves every store (empty or pre-populated) in
  // exactly the state the raw run produces.
  Xoshiro256 rng(99);
  for (int round = 0; round < 200; ++round) {
    std::vector<EdgeUpdate> raw;
    const std::size_t len = 1 + rng.NextUint64(12);
    for (std::size_t i = 0; i < len; ++i) {
      raw.push_back(Op(static_cast<UpdateKind>(rng.NextUint64(3)),
                       rng.NextUint64(3), rng.NextUint64(3),
                       1.0 + static_cast<double>(rng.NextUint64(50))));
    }
    std::vector<EdgeUpdate> folded = raw;
    MicroBatcher::Coalesce(&folded);

    for (int prior = 0; prior < 2; ++prior) {
      GraphStore a, b;
      if (prior == 1) {  // pre-populate every possible edge
        for (VertexId s = 0; s < 3; ++s) {
          for (VertexId d = 0; d < 3; ++d) a.AddEdge({s, d, 0.5, 0});
        }
        for (VertexId s = 0; s < 3; ++s) {
          for (VertexId d = 0; d < 3; ++d) b.AddEdge({s, d, 0.5, 0});
        }
      }
      a.ApplyBatch(raw);
      b.ApplyBatch(folded);
      ASSERT_EQ(CanonicalEdges(a), CanonicalEdges(b))
          << "round " << round << " prior " << prior;
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end determinism: pipeline == sequential replay

TEST(PipelineDeterminism, StoreMatchesSequentialReplayOfItsLog) {
  const std::vector<TimedUpdate> trace = MakeTrace(20000, 42);
  for (const std::size_t max_batch : {64u, 1024u, 100000u}) {
    Pipeline p(IngestorConfig{.num_shards = 4, .shard_capacity = 1 << 16},
               MicroBatcherConfig{.max_batch = max_batch});
    for (const TimedUpdate& u : trace) ASSERT_TRUE(p.ingestor.Offer(u).ok());
    p.ingestor.Close();
    p.batcher.Flush();

    // Durability: the WAL holds the raw trace, bit for bit.
    ASSERT_EQ(p.log.size(), trace.size());
    EXPECT_EQ(p.log.rejected(), 0u);
    EXPECT_EQ(p.log.MaxTimestamp(), trace.back().timestamp);

    // Determinism: a fresh store rolled forward by sequential replay is
    // identical to the live store the pipeline maintained with
    // micro-batching + coalescing + parallel batch application.
    GraphStore control;
    p.log.SnapshotInto(&control, p.log.MaxTimestamp());
    EXPECT_EQ(CanonicalEdges(p.graph), CanonicalEdges(control))
        << "max_batch " << max_batch;

    // Observability: everything drained, watermarks converged.
    const MicroBatcherStats bs = p.batcher.Stats();
    EXPECT_EQ(bs.updates_ingested, trace.size());
    EXPECT_EQ(bs.applied_watermark, trace.back().timestamp);
    EXPECT_EQ(bs.pending, 0u);
    EXPECT_GT(bs.coalesced, 0u);  // a 64-vertex universe must collide
    EXPECT_EQ(p.epochs.epoch(), bs.batches_applied);
  }
}

TEST(PipelineDeterminism, CoalesceOnAndOffConverge) {
  const std::vector<TimedUpdate> trace = MakeTrace(8000, 7, 32);
  std::vector<std::vector<CanonEdge>> results;
  for (const bool coalesce : {true, false}) {
    Pipeline p(IngestorConfig{}, MicroBatcherConfig{.max_batch = 512,
                                                    .coalesce = coalesce});
    for (const TimedUpdate& u : trace) ASSERT_TRUE(p.ingestor.Offer(u).ok());
    p.batcher.Flush();
    results.push_back(CanonicalEdges(p.graph));
    if (coalesce) {
      EXPECT_GT(p.batcher.Stats().coalesced, 0u);
    } else {
      EXPECT_EQ(p.batcher.Stats().coalesced, 0u);
    }
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(PipelineDeterminism, MultiRelationRouting) {
  const std::vector<TimedUpdate> trace = MakeTrace(6000, 3, 48, 3);
  GraphStoreConfig gcfg;
  gcfg.num_relations = 3;
  Pipeline p(IngestorConfig{.num_relations = 3}, MicroBatcherConfig{}, gcfg);
  for (const TimedUpdate& u : trace) ASSERT_TRUE(p.ingestor.Offer(u).ok());
  p.batcher.Flush();

  GraphStore control(gcfg);
  p.log.SnapshotInto(&control, p.log.MaxTimestamp());
  EXPECT_EQ(CanonicalEdges(p.graph), CanonicalEdges(control));
}

TEST(PipelineTest, DropOldestStoreStillMatchesItsOwnLog) {
  // Under drop-oldest pressure some updates are shed, but the invariant
  // "live store == sequential replay of the WAL" must survive: what was
  // logged is exactly what was applied.
  const std::vector<TimedUpdate> trace = MakeTrace(5000, 11);
  Pipeline p(IngestorConfig{.num_shards = 2,
                            .shard_capacity = 64,
                            .policy = BackpressurePolicy::kDropOldest},
             MicroBatcherConfig{.max_batch = 256});
  std::size_t offered = 0;
  for (const TimedUpdate& u : trace) {
    ASSERT_TRUE(p.ingestor.Offer(u).ok());
    // Pump only occasionally so queues overflow and drop.
    if (++offered % 1500 == 0) p.batcher.PumpOnce(/*force=*/true);
  }
  p.batcher.Flush();
  EXPECT_GT(p.ingestor.Stats().dropped, 0u);
  EXPECT_LT(p.log.size(), trace.size());

  GraphStore control;
  p.log.SnapshotInto(&control, p.log.MaxTimestamp());
  EXPECT_EQ(CanonicalEdges(p.graph), CanonicalEdges(control));
}

TEST(PipelineTest, MinBatchAccumulatesUntilThreshold) {
  Pipeline p(IngestorConfig{},
             MicroBatcherConfig{.max_batch = 1024, .min_batch = 100});
  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(p.ingestor.OfferInsert(i, {i, i + 1, 1.0, 0}).ok());
  }
  EXPECT_EQ(p.batcher.PumpOnce(), 0u);  // below min_batch: accumulate
  EXPECT_EQ(p.batcher.Stats().pending, 50u);
  for (std::uint64_t i = 50; i < 120; ++i) {
    ASSERT_TRUE(p.ingestor.OfferInsert(i, {i, i + 1, 1.0, 0}).ok());
  }
  EXPECT_EQ(p.batcher.PumpOnce(), 120u);  // threshold crossed: apply all
  EXPECT_EQ(p.graph.NumEdges(), 120u);
  // Force overrides the threshold.
  ASSERT_TRUE(p.ingestor.OfferInsert(120, {7, 500, 1.0, 0}).ok());
  EXPECT_EQ(p.batcher.PumpOnce(/*force=*/true), 1u);
  EXPECT_EQ(p.graph.NumEdges(), 121u);
}

// ---------------------------------------------------------------------------
// Continuous training

/// A small community graph with features/labels, the trainer's fixture.
void SeedCommunityGraph(GraphStore* g, std::size_t vertices,
                        std::vector<VertexId>* seeds) {
  Xoshiro256 rng(5);
  const std::size_t dim = 8;
  for (VertexId v = 0; v < vertices; ++v) {
    const std::size_t comm = v % 4;
    for (int k = 0; k < 6; ++k) {
      const VertexId u = rng.NextUint64(vertices);
      if (u != v) g->AddEdge({v, u, 1.0, 0});
    }
    std::vector<float> f(dim);
    for (auto& x : f) x = static_cast<float>(rng.NextDouble() - 0.5);
    f[comm] += 1.5f;
    g->attributes().SetFeatures(v, std::move(f));
    g->attributes().SetLabel(v, static_cast<std::int64_t>(comm));
    seeds->push_back(v);
  }
}

TEST(ContinuousTrainerTest, TrainsWhileIngesting) {
  Pipeline p(IngestorConfig{}, MicroBatcherConfig{.max_batch = 256});
  std::vector<VertexId> seeds;
  SeedCommunityGraph(&p.graph, 200, &seeds);

  GraphSageModel model(
      GraphSageConfig{.in_dim = 8, .hidden_dim = 16, .num_classes = 4},
      /*seed=*/3);
  Trainer trainer(&p.graph, &model,
                  TrainerConfig{.batch_size = 32, .fanout_hop1 = 5,
                                .fanout_hop2 = 5});
  ContinuousTrainer driver(&p.ingestor, &p.batcher, &p.epochs, &trainer);

  Xoshiro256 rng(17);
  std::uint64_t ts = 0;
  for (int step = 0; step < 8; ++step) {
    // Producer-side traffic between steps.
    for (int k = 0; k < 40; ++k) {
      const VertexId v = rng.NextUint64(200);
      const VertexId u = rng.NextUint64(200);
      ASSERT_TRUE(p.ingestor.OfferInsert(++ts, {v, u, 1.0, 0}).ok());
    }
    const ContinuousTrainer::StepReport r = driver.Step(rng);
    EXPECT_EQ(r.step, static_cast<std::size_t>(step + 1));
    EXPECT_TRUE(std::isfinite(r.loss));
    EXPECT_EQ(r.staleness, 0u);  // each step pumps everything queued
    EXPECT_EQ(r.epoch, p.epochs.epoch());
  }

  const PipelineStats stats = driver.Stats();
  EXPECT_EQ(stats.batcher.updates_ingested, stats.ingest.accepted);
  EXPECT_EQ(stats.staleness, 0u);
  EXPECT_GE(stats.epoch, 1u);

  // The live store equals seed + replay of its own WAL even after training
  // interleaved with ingestion throughout. The seed graph predates the
  // pipeline, so it is re-seeded rather than replayed.
  GraphStore control;
  std::vector<VertexId> control_seeds;
  SeedCommunityGraph(&control, 200, &control_seeds);
  p.log.SnapshotInto(&control, p.log.MaxTimestamp());
  EXPECT_EQ(CanonicalEdges(p.graph), CanonicalEdges(control));
}

TEST(ContinuousTrainerTest, StalenessReportsIngestLag) {
  Pipeline p(IngestorConfig{}, MicroBatcherConfig{});
  std::vector<VertexId> seeds;
  SeedCommunityGraph(&p.graph, 100, &seeds);
  ASSERT_TRUE(p.ingestor.OfferInsert(1000, {1, 2, 1.0, 0}).ok());
  p.batcher.Flush();

  GraphSageModel model(
      GraphSageConfig{.in_dim = 8, .hidden_dim = 16, .num_classes = 4}, 3);
  Trainer trainer(&p.graph, &model, TrainerConfig{.batch_size = 16});
  ContinuousTrainer driver(&p.ingestor, &p.batcher, &p.epochs, &trainer,
                           ContinuousTrainerConfig{});

  // New traffic arrives but is NOT pumped: staleness = lag in event time.
  ASSERT_TRUE(p.ingestor.OfferInsert(1500, {2, 3, 1.0, 0}).ok());
  EXPECT_EQ(driver.Staleness(), 500u);
  // A step pumps first, so it trains fresh again.
  Xoshiro256 rng(1);
  const ContinuousTrainer::StepReport r = driver.Step(rng);
  EXPECT_EQ(r.staleness, 0u);
}

// ---------------------------------------------------------------------------
// Producers vs trainer stress (the TSan target, label: concurrency)

TEST(PipelineStress, ProducersVsTrainerEpochSnapshotConsistency) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 3000;
  constexpr std::size_t kVertices = 200;

  Pipeline p(IngestorConfig{.num_shards = 4,
                            .shard_capacity = 256,
                            .policy = BackpressurePolicy::kBlock},
             MicroBatcherConfig{.max_batch = 512});
  std::vector<VertexId> seeds;
  SeedCommunityGraph(&p.graph, kVertices, &seeds);
  const std::size_t base_edges = p.graph.NumEdges();

  GraphSageModel model(
      GraphSageConfig{.in_dim = 8, .hidden_dim = 16, .num_classes = 4}, 3);
  Trainer trainer(&p.graph, &model,
                  TrainerConfig{.batch_size = 32, .fanout_hop1 = 5,
                                .fanout_hop2 = 5});
  ContinuousTrainer driver(&p.ingestor, &p.batcher, &p.epochs, &trainer);

  // Producers: each inserts kPerProducer globally-unique edges (so the
  // final edge count is exact) at a constant event time (trivially
  // monotone, so the WAL accepts every interleaving).
  std::vector<std::thread> producers;
  for (std::size_t pr = 0; pr < kProducers; ++pr) {
    producers.emplace_back([&, pr] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const VertexId src = (pr * kPerProducer + i) % kVertices;
        const VertexId dst = kVertices + pr * kPerProducer + i;
        ASSERT_TRUE(p.ingestor.OfferInsert(1, {src, dst, 1.0, 0}).ok());
      }
    });
  }

  // Concurrent readers: pin an epoch, observe, and verify nothing moved
  // while pinned — the snapshot-consistency contract of the barrier.
  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rng(1000 + r);
      std::vector<VertexId> sampled;
      while (!stop_readers.load(std::memory_order_acquire)) {
        const EpochCoordinator::ReadGuard pin = p.epochs.PinRead();
        const std::size_t edges_at_pin = p.graph.NumEdges();
        sampled.clear();
        p.graph.SampleNeighbors(rng.NextUint64(kVertices), 8,
                                /*weighted=*/true, rng, &sampled);
        // No batch may land while we hold the pin.
        ASSERT_EQ(p.graph.NumEdges(), edges_at_pin);
        ASSERT_EQ(p.epochs.epoch(), pin.epoch());
      }
    });
  }

  // Driver thread: pump + train until the producers are done, then
  // drain the tail.
  Xoshiro256 rng(17);
  for (int step = 0; step < 40; ++step) driver.Step(rng);
  for (auto& t : producers) t.join();
  p.ingestor.Close();
  driver.Drain();
  stop_readers.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Lossless pipeline: every offered edge landed exactly once.
  const std::size_t streamed = kProducers * kPerProducer;
  EXPECT_EQ(p.graph.NumEdges(), base_edges + streamed);
  EXPECT_EQ(p.log.size(), streamed);
  EXPECT_EQ(p.ingestor.Stats().dropped, 0u);
  EXPECT_EQ(p.batcher.Stats().log_rejected, 0u);
  EXPECT_EQ(driver.Stats().staleness, 0u);

  // And the replay invariant holds after the storm.
  GraphStore control;
  SeedCommunityGraph(&control, kVertices, &seeds);
  p.log.SnapshotInto(&control, p.log.MaxTimestamp());
  EXPECT_EQ(CanonicalEdges(p.graph), CanonicalEdges(control));
}

}  // namespace
}  // namespace platod2gl
