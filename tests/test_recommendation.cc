// Recommendation-stack tests: NegativeSampler, TwoTowerModel (BPR) and
// the personalised-PageRank estimator — the paper's motivating workload
// wired end-to-end against the dynamic store.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "gnn/two_tower.h"
#include "sampling/negative_sampler.h"
#include "storage/graph_store.h"
#include "walk/random_walk.h"

namespace platod2gl {
namespace {

constexpr VertexId kUserBase = 0;
constexpr VertexId kItemBase = 1ULL << 32;

// Preference world: even users like even items, odd users like odd items.
void BuildPreferenceGraph(GraphStore* g, std::size_t users,
                          std::size_t items, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (VertexId u = 0; u < users; ++u) {
    for (int k = 0; k < 12; ++k) {
      const VertexId item = rng.NextUint64(items / 2) * 2 + (u % 2);
      g->AddEdge({kUserBase + u, kItemBase + item, 1.0, 0});
      g->AddEdge({kItemBase + item, kUserBase + u, 1.0, 0});  // mirror
    }
  }
}

TEST(NegativeSamplerTest, DrawsOnlyFromRequestedRange) {
  GraphStore g;
  BuildPreferenceGraph(&g, 50, 40, 1);
  NegativeSampler sampler(&g.topology(0), 0.75, kItemBase, kInvalidVertex);
  EXPECT_GT(sampler.population(), 0u);
  Xoshiro256 rng(2);
  for (VertexId v : sampler.Sample(500, rng)) {
    EXPECT_GE(v, kItemBase);
  }
}

TEST(NegativeSamplerTest, PopularityBiasFollowsDegreeAlpha) {
  GraphStore g;
  // Item A has 64 in-edges, item B has 1 (as sources of the mirror).
  for (VertexId u = 0; u < 64; ++u) {
    g.AddEdge({kItemBase + 0, kUserBase + u, 1.0, 0});
  }
  g.AddEdge({kItemBase + 1, kUserBase + 0, 1.0, 0});
  NegativeSampler sampler(&g.topology(0), 0.75, kItemBase, kInvalidVertex);
  Xoshiro256 rng(3);
  int heavy = 0;
  const auto picks = sampler.Sample(20000, rng);
  for (VertexId v : picks) heavy += (v == kItemBase + 0);
  // Expected share = 64^0.75 / (64^0.75 + 1) ~ 0.958.
  EXPECT_NEAR(heavy / 20000.0, 0.958, 0.02);
}

TEST(NegativeSamplerTest, PositiveFilterRejects) {
  GraphStore g;
  g.AddEdge({kItemBase + 0, 1, 1.0, 0});
  g.AddEdge({kItemBase + 1, 1, 1.0, 0});
  NegativeSampler sampler(&g.topology(0), 0.75, kItemBase, kInvalidVertex);
  Xoshiro256 rng(4);
  const auto picks = sampler.Sample(
      200, rng, [](VertexId v) { return v == kItemBase + 0; });
  for (VertexId v : picks) EXPECT_EQ(v, kItemBase + 1);
}

TEST(NegativeSamplerTest, EmptyPopulation) {
  TopologyStore empty;
  NegativeSampler sampler(&empty);
  Xoshiro256 rng(5);
  EXPECT_TRUE(sampler.Sample(10, rng).empty());
}

TEST(NegativeSamplerTest, RefreshSeesNewItems) {
  GraphStore g;
  g.AddEdge({kItemBase + 0, 1, 1.0, 0});
  NegativeSampler sampler(&g.topology(0), 0.75, kItemBase, kInvalidVertex);
  EXPECT_EQ(sampler.population(), 1u);
  g.AddEdge({kItemBase + 7, 1, 1.0, 0});
  sampler.Refresh();
  EXPECT_EQ(sampler.population(), 2u);
}

TEST(TwoTowerTest, BprTrainingImprovesPairwiseAccuracy) {
  GraphStore g;
  BuildPreferenceGraph(&g, 200, 60, 7);
  std::vector<VertexId> users;
  for (VertexId u = 0; u < 200; ++u) users.push_back(kUserBase + u);

  TwoTowerModel model(&g,
                      TwoTowerConfig{.dim = 16, .learning_rate = 0.08f},
                      kItemBase, kInvalidVertex, /*seed=*/8);
  Xoshiro256 rng(9);
  const double before = model.PairwiseAccuracy(users, 5, rng);
  for (int epoch = 0; epoch < 30; ++epoch) model.TrainEpoch(users, rng);
  const double after = model.PairwiseAccuracy(users, 5, rng);

  EXPECT_NEAR(before, 0.5, 0.15) << "untrained model should be ~random";
  EXPECT_GT(after, 0.8) << "trained model must rank positives above "
                           "negatives (started at " << before << ")";
}

TEST(TwoTowerTest, RecommendRanksLikedItemsFirst) {
  GraphStore g;
  BuildPreferenceGraph(&g, 200, 60, 11);
  std::vector<VertexId> users;
  for (VertexId u = 0; u < 200; ++u) users.push_back(u);
  TwoTowerModel model(&g, TwoTowerConfig{.dim = 16, .learning_rate = 0.08f},
                      kItemBase, kInvalidVertex, 12);
  Xoshiro256 rng(13);
  for (int epoch = 0; epoch < 30; ++epoch) model.TrainEpoch(users, rng);

  // Even user 0: top of a mixed candidate list should be mostly even
  // items.
  std::vector<VertexId> candidates;
  for (VertexId i = 0; i < 40; ++i) candidates.push_back(kItemBase + i);
  const auto ranked = model.Recommend(0, candidates);
  int even_in_top = 0;
  for (int k = 0; k < 10; ++k) {
    even_in_top += ((ranked[k] - kItemBase) % 2 == 0);
  }
  EXPECT_GE(even_in_top, 8);
}

TEST(TwoTowerTest, HandlesColdStartUsers) {
  GraphStore g;
  BuildPreferenceGraph(&g, 20, 10, 15);
  TwoTowerModel model(&g, TwoTowerConfig{.dim = 8}, kItemBase);
  Xoshiro256 rng(16);
  // User 9999 has no interactions: the epoch must simply skip them.
  const double loss = model.TrainEpoch({9999}, rng);
  EXPECT_DOUBLE_EQ(loss, 0.0);
  // Scoring still works (lazy embedding rows).
  model.Score(9999, kItemBase + 1);
}

TEST(ApproxPPRTest, MassConcentratesNearSeed) {
  // Two loosely-bridged cliques: PPR from a vertex of clique A should put
  // most of its mass inside clique A.
  GraphStore g;
  auto clique = [&](VertexId base) {
    for (VertexId a = base; a < base + 10; ++a) {
      for (VertexId b = base; b < base + 10; ++b) {
        if (a != b) g.AddEdge({a, b, 1.0, 0});
      }
    }
  };
  clique(0);
  clique(100);
  g.AddEdge({0, 100, 0.05, 0});
  g.AddEdge({100, 0, 0.05, 0});

  RandomWalker walker(&g);
  Xoshiro256 rng(17);
  const auto ppr = walker.ApproxPPR(/*seed=*/3, /*num_walks=*/300,
                                    /*walk_length=*/20,
                                    /*restart_prob=*/0.2, rng);
  ASSERT_FALSE(ppr.empty());
  // Masses sum to ~1.
  double total = 0.0, in_a = 0.0;
  for (const auto& [v, mass] : ppr) {
    total += mass;
    if (v < 100) in_a += mass;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(in_a, 0.9);
  // The seed itself is the top-ranked vertex under a 0.2 restart rate.
  EXPECT_EQ(ppr.front().first, 3u);
}

TEST(ApproxPPRTest, DanglingSeed) {
  GraphStore g;
  g.AddEdge({1, 2, 1.0, 0});
  RandomWalker walker(&g);
  Xoshiro256 rng(18);
  const auto ppr = walker.ApproxPPR(42, 10, 5, 0.2, rng);
  ASSERT_EQ(ppr.size(), 1u);  // only the seed, with all the mass
  EXPECT_EQ(ppr[0].first, 42u);
  EXPECT_DOUBLE_EQ(ppr[0].second, 1.0);
}

}  // namespace
}  // namespace platod2gl
