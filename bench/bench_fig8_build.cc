// Figure 8 reproduction: time cost of dynamic graph building.
//
// Paper result: PlatoD2GL builds every dataset fastest — up to 6.3x
// faster than the slowest baseline and ~2.5x faster than PlatoGL on
// WeChat. Building is *dynamic*: edges stream in 2^16-edge ingest
// batches and every system must be sample-ready after each batch, which
// is what makes AliGraph's eager alias tables expensive.
#include <cstdio>

#include "bench_util.h"

using namespace platod2gl;
using namespace platod2gl::bench;

int main() {
  std::printf("=== Figure 8: time cost of graph building (seconds) ===\n");
  std::printf("(scale factor %.2f; set PLATOD2GL_SCALE to adjust)\n\n",
              DatasetScale());
  std::printf("%-14s %12s %12s %12s %14s\n", "dataset", "AliGraph",
              "PlatoGL", "PlatoD2GL", "w/o CP");
  PrintRule();

  for (const Dataset& ds : MakeAllDatasets()) {
    auto systems = MakeAllSystems(ds.num_relations);
    std::printf("%-14s", ds.name.c_str());
    std::vector<double> secs;
    for (auto& sys : systems) {
      secs.push_back(BuildSystem(sys, ds.edges));
    }
    std::printf(" %12.3f %12.3f %12.3f %14.3f\n", secs[0], secs[1], secs[2],
                secs[3]);
    const double d2gl = secs[2];
    std::printf("%-14s   speedup of PlatoD2GL: %.2fx vs AliGraph, "
                "%.2fx vs PlatoGL (%zu edges)\n",
                "", secs[0] / d2gl, secs[1] / d2gl, ds.edges.size());
  }
  std::printf("\npaper shape: PlatoD2GL fastest on all datasets "
              "(up to 6.3x overall, ~2.5x vs PlatoGL on WeChat)\n");
  return 0;
}
