// Batched-sampling hot-path ablation (docs/sampling_simd.md).
//
// Four variants of drawing k weighted neighbours from a samtree, each
// adding one optimisation on top of the previous:
//
//   per_draw        — k independent SampleWeighted(rng) descents (the
//                     pre-batching baseline)
//   batched         — SampleWeightedBatch, scalar kernels, no prefetch:
//                     one sorted root→leaf sweep amortises the descent
//   batched_simd    — same sweep with the AVX2 compare+movemask kernels
//   batched_simd_arena_prefetch
//                   — arena-built trees (contiguous nodes) + next-level
//                     software prefetch on top of the SIMD sweep
//
// All four produce bit-identical samples under the same seed (asserted in
// tests/test_sampling_batched.cc); this binary measures only throughput,
// on two degree mixes — Zipf(1.0)-skewed neighbourhood sizes and a flat
// uniform mix — and asserts the issue's acceptance bar: batched+SIMD at
// least 1.5x the per-draw baseline on weighted sampling for some k >= 16.
// Results go to BENCH_sampling_batched.json.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/memory.h"
#include "common/random.h"
#include "common/simd.h"
#include "core/samtree.h"

using namespace platod2gl;
using namespace platod2gl::bench;

namespace {

/// Neighbourhood sizes for `num_trees` vertices. Zipf: degree of rank r
/// falls off as 1/(r+1), the "popular vertices are big" serving shape;
/// uniform: every vertex the same mid-size neighbourhood.
std::vector<std::size_t> DegreeMix(const std::string& mix,
                                   std::size_t num_trees) {
  std::vector<std::size_t> degrees;
  degrees.reserve(num_trees);
  for (std::size_t r = 0; r < num_trees; ++r) {
    if (mix == "zipf") {
      degrees.push_back(
          std::max<std::size_t>(8, 20000 / (r + 1)));
    } else {
      degrees.push_back(256);
    }
  }
  return degrees;
}

std::vector<Samtree> BuildTrees(const std::vector<std::size_t>& degrees,
                                NodeArena* arena) {
  SamtreeConfig cfg;  // paper defaults: capacity 256, CP-IDs on
  cfg.arena = arena;
  Xoshiro256 rng(4242);
  std::vector<Samtree> trees;
  trees.reserve(degrees.size());
  for (std::size_t deg : degrees) {
    std::vector<std::pair<VertexId, Weight>> nbrs;
    nbrs.reserve(deg);
    for (std::size_t i = 0; i < deg; ++i) {
      nbrs.emplace_back(static_cast<VertexId>(i * 3 + 1),
                        0.05 + rng.NextDouble());
    }
    trees.push_back(Samtree::BulkBuild(std::move(nbrs), cfg));
  }
  return trees;
}

double MeasureWeighted(const std::vector<Samtree>& trees, std::size_t k,
                       int rounds, bool batched) {
  Xoshiro256 rng(7);
  std::vector<VertexId> out;
  Timer t;
  for (int r = 0; r < rounds; ++r) {
    for (const Samtree& tree : trees) {
      out.clear();
      if (batched) {
        tree.SampleWeightedBatch(k, rng, &out);
      } else {
        for (std::size_t i = 0; i < k; ++i) {
          out.push_back(tree.SampleWeighted(rng));
        }
      }
    }
  }
  return t.ElapsedMillis();
}

double MeasureUniform(const std::vector<Samtree>& trees, std::size_t k,
                      int rounds, bool batched) {
  Xoshiro256 rng(9);
  std::vector<VertexId> out;
  Timer t;
  for (int r = 0; r < rounds; ++r) {
    for (const Samtree& tree : trees) {
      out.clear();
      if (batched) {
        tree.SampleUniformBatch(k, rng, &out);
      } else {
        for (std::size_t i = 0; i < k; ++i) {
          out.push_back(tree.SampleUniform(rng));
        }
      }
    }
  }
  return t.ElapsedMillis();
}

}  // namespace

int main() {
  std::printf("=== Batched sampling hot-path ablation ===\n");
  std::printf("AVX2: %s (dispatch %s)\n",
              simd::Avx2Supported() ? "supported" : "unsupported",
              simd::Avx2Enabled() ? "on" : "scalar");
  JsonRecords json("sampling_batched");

  const std::size_t num_trees = 2000;
  const int rounds = 3;
  const std::vector<std::size_t> ks = {4, 16, 50, 128};
  bool accept_ok = true;

  for (const std::string mix : {"zipf", "uniform"}) {
    const std::vector<std::size_t> degrees = DegreeMix(mix, num_trees);

    // The arena must outlive its trees: declared first, destroyed last.
    NodeArena arena;
    const std::vector<Samtree> heap_trees = BuildTrees(degrees, nullptr);
    const std::vector<Samtree> arena_trees = BuildTrees(degrees, &arena);

    std::printf("\n--- %s degree mix: %zu trees, weighted k-draws ---\n",
                mix.c_str(), num_trees);
    std::printf("%-6s %12s %12s %12s %16s %10s\n", "k", "per_draw",
                "batched", "+simd", "+arena+prefetch", "best");
    PrintRule();

    for (std::size_t k : ks) {
      const double draws = static_cast<double>(num_trees) * rounds *
                           static_cast<double>(k);

      // Baseline: independent per-draw descents (dispatch irrelevant —
      // the one-at-a-time path has no vector kernels).
      const double base_ms = MeasureWeighted(heap_trees, k, rounds, false);

      simd::SetAvx2EnabledForTest(false);
      simd::SetPrefetchEnabled(false);
      const double batched_ms = MeasureWeighted(heap_trees, k, rounds, true);

      simd::SetAvx2EnabledForTest(true);  // clamped scalar w/o AVX2
      const double simd_ms = MeasureWeighted(heap_trees, k, rounds, true);

      simd::SetPrefetchEnabled(true);
      const double full_ms = MeasureWeighted(arena_trees, k, rounds, true);

      const double best = std::min({batched_ms, simd_ms, full_ms});
      std::printf("%-6zu %10.2fms %10.2fms %10.2fms %14.2fms %9.2fx\n", k,
                  base_ms, batched_ms, simd_ms, full_ms, base_ms / best);

      json.Rec()
          .Str("mix", mix)
          .Str("mode", "weighted")
          .Num("k", static_cast<std::uint64_t>(k))
          .Num("trees", static_cast<std::uint64_t>(num_trees))
          .Num("per_draw_ms", base_ms)
          .Num("batched_ms", batched_ms)
          .Num("batched_simd_ms", simd_ms)
          .Num("batched_simd_arena_prefetch_ms", full_ms)
          .Num("per_draw_ns_per_draw", base_ms * 1e6 / draws)
          .Num("best_ns_per_draw", best * 1e6 / draws)
          .Num("speedup_batched", base_ms / batched_ms)
          .Num("speedup_simd", base_ms / simd_ms)
          .Num("speedup_full", base_ms / full_ms);

      // Acceptance bar (only meaningful where the SIMD kernels can run).
      if (k >= 16 && simd::Avx2Supported() && base_ms / simd_ms < 1.5 &&
          base_ms / full_ms < 1.5) {
        accept_ok = false;
        std::fprintf(stderr,
                     "ACCEPTANCE MISS: %s k=%zu batched+SIMD %.2fx, "
                     "+arena+prefetch %.2fx (< 1.5x per-draw)\n",
                     mix.c_str(), k, base_ms / simd_ms, base_ms / full_ms);
      }
    }

    std::printf("\n--- %s degree mix: uniform k-draws ---\n", mix.c_str());
    std::printf("%-6s %12s %12s %10s\n", "k", "per_draw", "batched",
                "speedup");
    PrintRule();
    for (std::size_t k : ks) {
      const double base_ms = MeasureUniform(heap_trees, k, rounds, false);
      const double batched_ms = MeasureUniform(arena_trees, k, rounds, true);
      std::printf("%-6zu %10.2fms %10.2fms %9.2fx\n", k, base_ms, batched_ms,
                  base_ms / batched_ms);
      json.Rec()
          .Str("mix", mix)
          .Str("mode", "uniform")
          .Num("k", static_cast<std::uint64_t>(k))
          .Num("trees", static_cast<std::uint64_t>(num_trees))
          .Num("per_draw_ms", base_ms)
          .Num("batched_ms", batched_ms)
          .Num("speedup_batched", base_ms / batched_ms);
    }
  }

  // Back to production dispatch before exiting (harmless, but keeps the
  // bench honest if it ever grows more phases).
  simd::SetAvx2EnabledForTest(simd::Avx2Supported());
  simd::SetPrefetchEnabled(true);

  if (json.WriteFile("BENCH_sampling_batched.json")) {
    std::printf("\nwrote BENCH_sampling_batched.json\n");
  } else {
    std::fprintf(stderr, "failed to write BENCH_sampling_batched.json\n");
    return 1;
  }
  if (!accept_ok) {
    std::fprintf(stderr, "batched+SIMD acceptance bar (>= 1.5x at k >= 16) "
                         "not met\n");
    return 1;
  }
  std::printf("acceptance: batched+SIMD >= 1.5x per-draw at k >= 16 on "
              "both mixes\n");
  return 0;
}
