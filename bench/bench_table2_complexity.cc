// Table II reproduction: time complexity of FTS (FSTable) vs ITS
// (CSTable) for dynamic updates and sampling inside one samtree leaf.
//
//   method | new insertion | in-place | deletion | sampling
//   ITS    | O(1)          | O(n)     | O(n)     | O(log n)
//   FTS    | O(log n)      | O(log n) | O(log n) | O(log n)
//
// Run with google-benchmark across n = 2^6 .. 2^16: the ITS in-place /
// deletion rows must grow linearly with n while every FTS row stays
// ~flat (logarithmic), which is the entire point of the FSTable.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "index/cstable.h"
#include "index/fstable.h"

namespace platod2gl {
namespace {

std::vector<Weight> RandomWeights(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Weight> w;
  w.reserve(n);
  for (std::size_t i = 0; i < n; ++i) w.push_back(0.05 + rng.NextDouble());
  return w;
}

// --- new insertion (append) -------------------------------------------

void BM_ITS_Insertion(benchmark::State& state) {
  const std::size_t n = state.range(0);
  CSTable table(RandomWeights(n, 1));
  Xoshiro256 rng(2);
  for (auto _ : state) {
    table.Append(0.5);
    state.PauseTiming();
    table.Remove(table.size() - 1);  // keep size fixed at n
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ITS_Insertion)->RangeMultiplier(4)->Range(64, 1 << 16);

void BM_FTS_Insertion(benchmark::State& state) {
  const std::size_t n = state.range(0);
  FSTable table(RandomWeights(n, 1));
  for (auto _ : state) {
    table.Append(0.5);
    state.PauseTiming();
    table.RemoveSwapLast(table.size() - 1);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_FTS_Insertion)->RangeMultiplier(4)->Range(64, 1 << 16);

// --- in-place weight update --------------------------------------------

void BM_ITS_InPlaceUpdate(benchmark::State& state) {
  const std::size_t n = state.range(0);
  CSTable table(RandomWeights(n, 3));
  Xoshiro256 rng(4);
  for (auto _ : state) {
    table.UpdateWeight(rng.NextUint64(n), 0.05 + rng.NextDouble());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ITS_InPlaceUpdate)
    ->RangeMultiplier(4)
    ->Range(64, 1 << 16)
    ->Complexity(benchmark::oN);

void BM_FTS_InPlaceUpdate(benchmark::State& state) {
  const std::size_t n = state.range(0);
  FSTable table(RandomWeights(n, 3));
  Xoshiro256 rng(4);
  for (auto _ : state) {
    table.UpdateWeight(rng.NextUint64(n), 0.05 + rng.NextDouble());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FTS_InPlaceUpdate)
    ->RangeMultiplier(4)
    ->Range(64, 1 << 16)
    ->Complexity(benchmark::oLogN);

// --- deletion ------------------------------------------------------------

void BM_ITS_Deletion(benchmark::State& state) {
  const std::size_t n = state.range(0);
  CSTable table(RandomWeights(n, 5));
  Xoshiro256 rng(6);
  for (auto _ : state) {
    table.Remove(rng.NextUint64(table.size()));  // O(n)
    state.PauseTiming();
    table.Append(0.5);  // restore size
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ITS_Deletion)->RangeMultiplier(4)->Range(64, 1 << 16);

void BM_FTS_Deletion(benchmark::State& state) {
  const std::size_t n = state.range(0);
  FSTable table(RandomWeights(n, 5));
  Xoshiro256 rng(6);
  for (auto _ : state) {
    table.RemoveSwapLast(rng.NextUint64(table.size()));  // O(log n)
    table.Append(0.5);  // restore size, also O(log n)
  }
}
BENCHMARK(BM_FTS_Deletion)->RangeMultiplier(4)->Range(64, 1 << 16);

// --- sampling ------------------------------------------------------------

void BM_ITS_Sampling(benchmark::State& state) {
  const std::size_t n = state.range(0);
  CSTable table(RandomWeights(n, 7));
  Xoshiro256 rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
}
BENCHMARK(BM_ITS_Sampling)->RangeMultiplier(4)->Range(64, 1 << 16);

void BM_FTS_Sampling(benchmark::State& state) {
  const std::size_t n = state.range(0);
  FSTable table(RandomWeights(n, 7));
  Xoshiro256 rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
}
BENCHMARK(BM_FTS_Sampling)->RangeMultiplier(4)->Range(64, 1 << 16);

}  // namespace
}  // namespace platod2gl

BENCHMARK_MAIN();
