// Extension bench: streaming-pipeline ingest throughput (updates/s) as
// producer count scales, with and without a concurrent training loop on
// the consumer side.
//
// Producers hash-shard onto the UpdateIngestor's bounded MPSC queues
// (kBlock, lossless); the single consumer pumps the MicroBatcher —
// WAL-append, coalesce, apply under the epoch write barrier — either in
// a tight loop ("ingest-only") or interleaved with GraphSAGE minibatch
// steps ("with-training", the deployment shape). Results also land in
// BENCH_ingest_throughput.json so the perf trajectory is tracked across
// PRs (docs/streaming_pipeline.md).
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "gnn/model.h"
#include "gnn/trainer.h"
#include "pipeline/continuous_trainer.h"
#include "pipeline/epoch_coordinator.h"
#include "pipeline/micro_batcher.h"
#include "pipeline/update_ingestor.h"
#include "storage/graph_store.h"
#include "temporal/edge_log.h"

using namespace platod2gl;
using namespace platod2gl::bench;

namespace {

constexpr std::size_t kVertices = 2000;
constexpr std::size_t kUpdatesTotal = 200000;  // split across producers

/// Community graph + features/labels so the with-training mode has a
/// real GNN task; streamed updates then rewire the same vertex universe.
void SeedGraph(GraphStore* g) {
  Xoshiro256 rng(5);
  for (VertexId v = 0; v < kVertices; ++v) {
    for (int k = 0; k < 4; ++k) {
      const VertexId u = rng.NextUint64(kVertices);
      if (u != v) g->AddEdge({v, u, 1.0, 0});
    }
    std::vector<float> f(8);
    for (auto& x : f) x = static_cast<float>(rng.NextDouble() - 0.5);
    f[v % 4] += 1.5f;
    g->attributes().SetFeatures(v, std::move(f));
    g->attributes().SetLabel(v, static_cast<std::int64_t>(v % 4));
  }
}

struct RunResult {
  double secs = 0.0;
  std::uint64_t applied = 0;
  std::uint64_t batches = 0;
  std::uint64_t coalesced = 0;
  std::size_t train_steps = 0;
};

/// One measured configuration: `producers` feed threads, consumer either
/// pump-only or pump+train. Returns wall time from first offer to fully
/// drained pipeline.
RunResult RunPipeline(std::size_t producers, bool train) {
  GraphStore graph;
  SeedGraph(&graph);
  ThreadPool pool(4);
  UpdateIngestor ingestor(IngestorConfig{.num_shards = 8,
                                         .shard_capacity = 8192,
                                         .num_relations = 1});
  EpochCoordinator epochs;
  TemporalEdgeLog log;
  MicroBatcher batcher(&graph, &pool, &ingestor, &epochs, &log,
                       MicroBatcherConfig{.max_batch = 8192});

  GraphSageModel model(
      GraphSageConfig{.in_dim = 8, .hidden_dim = 16, .num_classes = 4}, 3);
  Trainer trainer(&graph, &model,
                  TrainerConfig{.batch_size = 64, .fanout_hop1 = 5,
                                .fanout_hop2 = 5});
  ContinuousTrainer driver(&ingestor, &batcher, &epochs, &trainer);

  std::atomic<std::uint64_t> clock{0};
  const std::size_t per_producer = kUpdatesTotal / producers;
  Timer timer;
  std::vector<std::thread> feeds;
  feeds.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    feeds.emplace_back([&, p] {
      Xoshiro256 rng(100 + p);
      for (std::size_t i = 0; i < per_producer; ++i) {
        const std::uint64_t ts = 1 + clock.fetch_add(1);
        EdgeUpdate u;
        const std::uint64_t roll = rng.NextUint64(10);
        u.kind = roll < 6   ? UpdateKind::kInsert
                 : roll < 8 ? UpdateKind::kInPlaceUpdate
                            : UpdateKind::kDelete;
        u.edge = {rng.NextUint64(kVertices), rng.NextUint64(kVertices),
                  1.0 + static_cast<double>(rng.NextUint64(100)), 0};
        (void)ingestor.Offer(TimedUpdate{ts, u});
      }
    });
  }

  RunResult r;
  Xoshiro256 train_rng(7);
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (train) {
        driver.Step(train_rng);
        ++r.train_steps;
      } else {
        if (batcher.PumpOnce(/*force=*/true) == 0) std::this_thread::yield();
      }
    }
    batcher.Flush();
  });
  for (auto& t : feeds) t.join();
  ingestor.Close();
  done.store(true, std::memory_order_release);
  consumer.join();
  r.secs = timer.ElapsedSeconds();

  const MicroBatcherStats stats = batcher.Stats();
  r.applied = stats.updates_ingested;
  r.batches = stats.batches_applied;
  r.coalesced = stats.coalesced;
  return r;
}

}  // namespace

int main() {
  std::printf("=== Extension: streaming ingest throughput ===\n\n");
  std::printf("%zu updates total, kBlock backpressure, max_batch 8192\n\n",
              kUpdatesTotal);
  std::printf("%-14s %10s %12s %10s %9s %7s\n", "mode", "producers",
              "updates/s", "batches", "coalesced", "steps");
  PrintRule();

  JsonRecords json("ingest_throughput");
  for (const bool train : {false, true}) {
    for (const std::size_t producers : {1u, 2u, 4u, 8u}) {
      const RunResult r = RunPipeline(producers, train);
      const double rate = static_cast<double>(kUpdatesTotal) / r.secs;
      std::printf("%-14s %10zu %12.0f %10llu %9llu %7zu\n",
                  train ? "with-training" : "ingest-only", producers, rate,
                  (unsigned long long)r.batches,
                  (unsigned long long)r.coalesced, r.train_steps);
      json.Rec()
          .Str("mode", train ? "with-training" : "ingest-only")
          .Num("producers", static_cast<std::uint64_t>(producers))
          .Num("updates", static_cast<std::uint64_t>(kUpdatesTotal))
          .Num("updates_per_sec", rate)
          .Num("micro_batches", r.batches)
          .Num("coalesced", r.coalesced)
          .Num("train_steps", static_cast<std::uint64_t>(r.train_steps));
    }
  }
  PrintRule();

  if (json.WriteFile("BENCH_ingest_throughput.json")) {
    std::printf("wrote BENCH_ingest_throughput.json\n");
  } else {
    std::fprintf(stderr, "failed to write BENCH_ingest_throughput.json\n");
  }
  return 0;
}
