// Extension bench: cost of the query types the FSTable/samtree design
// enables beyond the paper — weighted sampling WITHOUT replacement,
// ranged neighbourhood queries, and Monte-Carlo personalised PageRank.
#include <cstdio>

#include "baselines/samtree_store.h"
#include "bench_util.h"
#include "walk/random_walk.h"

using namespace platod2gl;
using namespace platod2gl::bench;

int main() {
  std::printf("=== Extension: query-type costs on the samtree store ===\n\n");

  // One large tree (a popular live-room's neighbourhood).
  Samtree tree(SamtreeConfig{});
  Xoshiro256 gen(3);
  constexpr VertexId kBase = 0x0001000000000000ULL;
  constexpr std::size_t kDegree = 200000;
  for (std::size_t i = 0; i < kDegree; ++i) {
    tree.InsertUnchecked(kBase + i, 0.05 + gen.NextDouble());
  }

  // Sampling without replacement vs with replacement.
  std::printf("weighted sampling from a degree-%zu neighbourhood:\n",
              kDegree);
  Xoshiro256 rng(4);
  for (std::size_t k : {10u, 100u, 1000u, 10000u}) {
    Timer t1;
    std::vector<VertexId> with;
    for (int rep = 0; rep < 20; ++rep) {
      with.clear();
      tree.SampleWeighted(k, rng, &with);
    }
    const double with_ms = t1.ElapsedMillis() / 20;

    Timer t2;
    for (int rep = 0; rep < 20; ++rep) {
      tree.SampleWeightedDistinct(k, rng);
    }
    const double without_ms = t2.ElapsedMillis() / 20;
    std::printf("  k=%-6zu with replacement %8.3f ms   distinct %8.3f ms "
                "(%.1fx)\n",
                k, with_ms, without_ms, without_ms / with_ms);
  }

  // Ranged queries: count a namespace slice vs full enumeration.
  std::printf("\nranged queries (count IDs in a half-namespace window):\n");
  {
    Timer t;
    std::size_t sink = 0;
    for (int rep = 0; rep < 200; ++rep) {
      sink += tree.CountInRange(kBase + kDegree / 4, kBase + kDegree / 2);
    }
    std::printf("  CountInRange:      %8.3f ms per call (count %zu)\n",
                t.ElapsedMillis() / 200, sink / 200);
  }
  {
    Timer t;
    std::size_t sink = 0;
    for (int rep = 0; rep < 20; ++rep) {
      tree.ForEachNeighbor([&](VertexId v, Weight) {
        sink += (v >= kBase + kDegree / 4 && v <= kBase + kDegree / 2);
      });
    }
    std::printf("  full-scan filter:  %8.3f ms per call (count %zu)\n",
                t.ElapsedMillis() / 20, sink / 20);
  }

  // Personalised PageRank over a dataset-scale graph.
  std::printf("\nMonte-Carlo PPR (wechat-mini, relation 0):\n");
  Dataset ds = MakeWeChatMini();
  GraphStore graph(GraphStoreConfig{.num_relations = ds.num_relations});
  for (const Edge& e : ds.edges) {
    graph.topology(e.type).AddEdgeUnchecked(e.src, e.dst, e.weight);
  }
  RandomWalker walker(&graph);
  const std::vector<VertexId> sources = SourcesOf(ds.edges, 0);
  for (std::size_t walks : {100u, 400u, 1600u}) {
    Timer t;
    std::size_t touched = 0;
    for (int s = 0; s < 10; ++s) {
      touched += walker
                     .ApproxPPR(sources[s], walks, /*walk_length=*/12,
                                /*restart_prob=*/0.15, rng)
                     .size();
    }
    std::printf("  %5zu walks/seed: %8.2f ms per seed, ~%zu vertices "
                "reached\n",
                walks, t.ElapsedMillis() / 10, touched / 10);
  }
  return 0;
}
