// Ablation: the sharded cuckoo hash map (paper Section IV-B, citing
// MemC3/libcuckoo) vs std::unordered_map as the topology-store map layer.
//
// Expected shape: comparable single-thread throughput, near-linear
// multi-thread insert scaling for the sharded cuckoo map (unordered_map
// cannot be written concurrently at all), and a denser memory layout
// (open addressing, 4-way buckets) than the node-based unordered_map.
#include <cstdio>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/memory.h"
#include "common/random.h"
#include "common/timer.h"
#include "storage/cuckoo_map.h"

using namespace platod2gl;

int main() {
  constexpr std::size_t kKeys = 1u << 20;
  std::printf("=== Ablation: sharded cuckoo map vs std::unordered_map "
              "(%zu keys) ===\n\n",
              kKeys);

  std::vector<VertexId> keys;
  keys.reserve(kKeys);
  Xoshiro256 rng(3);
  for (std::size_t i = 0; i < kKeys; ++i) keys.push_back(rng.Next() | 1);

  // Single-threaded insert + find.
  {
    CuckooMap<std::uint64_t> cuckoo(64, 1024);
    Timer t;
    for (VertexId k : keys) cuckoo.With(k, [](std::uint64_t& v) { v = 1; });
    const double ins = t.ElapsedSeconds();
    t.Reset();
    std::uint64_t hits = 0;
    for (VertexId k : keys) hits += (cuckoo.FindUnsafe(k) != nullptr);
    const double fnd = t.ElapsedSeconds();
    std::printf("cuckoo        insert %6.1f Mops/s   find %6.1f Mops/s   "
                "(hits %llu)\n",
                kKeys / ins / 1e6, kKeys / fnd / 1e6,
                static_cast<unsigned long long>(hits));
  }
  {
    std::unordered_map<VertexId, std::uint64_t> um;
    Timer t;
    for (VertexId k : keys) um[k] = 1;
    const double ins = t.ElapsedSeconds();
    t.Reset();
    std::uint64_t hits = 0;
    for (VertexId k : keys) hits += um.count(k);
    const double fnd = t.ElapsedSeconds();
    std::printf("unordered_map insert %6.1f Mops/s   find %6.1f Mops/s   "
                "(hits %llu)\n\n",
                kKeys / ins / 1e6, kKeys / fnd / 1e6,
                static_cast<unsigned long long>(hits));
  }

  // Concurrent insert scaling (cuckoo only: unordered_map is unsafe).
  std::printf("concurrent insert scaling (sharded cuckoo) on %u hardware "
              "thread(s):\n",
              std::thread::hardware_concurrency());
  std::printf("(speedup requires >1 core; on a 1-core box expect ~flat)\n");
  double base_secs = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    CuckooMap<std::uint64_t> cuckoo(64, 1024);
    Timer t;
    std::vector<std::thread> workers;
    const std::size_t chunk = kKeys / threads;
    for (std::size_t w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        const std::size_t begin = w * chunk;
        const std::size_t end = (w + 1 == threads) ? kKeys : begin + chunk;
        for (std::size_t i = begin; i < end; ++i) {
          cuckoo.With(keys[i], [](std::uint64_t& v) { v = 1; });
        }
      });
    }
    for (auto& th : workers) th.join();
    const double secs = t.ElapsedSeconds();
    if (threads == 1) base_secs = secs;
    std::printf("  %2zu threads: %6.1f Mops/s  (speedup %.2fx)\n", threads,
                kKeys / secs / 1e6, base_secs / secs);
  }
  return 0;
}
