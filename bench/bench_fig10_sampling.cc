// Figure 10 reproduction: sampling time by batch size.
//
//   (a-c) neighbour sampling, 50 neighbours per seed, batch 2^10 .. 2^14
//   (d-f) 2-hop subgraph sampling (fan-out 25 x 10), batch 2^8 .. 2^12
//
// Paper result: PlatoD2GL beats PlatoGL by up to 2.9x on neighbour
// sampling and up to 10.1x on subgraph sampling (WeChat); the compressed
// system also beats its own w/o-CP ablation thanks to cache effects.
// AliGraph is competitive per-sample (alias tables are O(1)) but pays the
// rebuild-on-mutation and memory costs shown in Fig. 8 / Table IV.
//
// Beyond the paper figure, a Zipf-skewed serving workload measures the
// hot-vertex sampling cache (sampling/sample_cache.h) on/off: power-law
// seed traffic against one GraphStore, cache-off going straight down the
// samtree descent and cache-on hitting the O(1) alias tables. All numbers
// are also written to BENCH_fig10_sampling.json so the perf trajectory is
// tracked across PRs.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "storage/graph_store.h"

using namespace platod2gl;
using namespace platod2gl::bench;

namespace {

// Generic 2-hop expansion over the NeighborStore interface so every
// system runs the identical subgraph workload.
double TwoHopMillis(NeighborStore& store, const std::vector<VertexId>& seeds,
                    std::size_t fanout1, std::size_t fanout2,
                    Xoshiro256& rng) {
  Timer t;
  std::vector<VertexId> hop1, hop2;
  for (VertexId s : seeds) {
    hop1.clear();
    if (!store.SampleNeighbors(s, fanout1, rng, &hop1)) continue;
    for (VertexId u : hop1) {
      hop2.clear();
      store.SampleNeighbors(u, fanout2, rng, &hop2);
    }
  }
  return t.ElapsedMillis();
}

/// The Zipf-skewed hot-vertex workload: one GraphStore, seed traffic
/// drawn Zipf(1.0) over the degree-ranked sources, measured with the
/// sampling cache bypassed (pure samtree descent) and consulted.
void RunZipfCacheMode(const Dataset& ds, JsonRecords* json) {
  GraphStoreConfig cfg;
  cfg.num_relations = ds.num_relations;
  // Serving caches earn their keep fast on skewed traffic: admit hot
  // vertices on the second touch once they carry a real neighbourhood.
  cfg.sample_cache.min_degree = 32;
  cfg.sample_cache.admit_after_misses = 2;
  GraphStore graph(cfg);
  for (const Edge& e : ds.edges) {
    graph.topology(e.type).AddEdgeUnchecked(e.src, e.dst, e.weight);
  }

  // Degree-ranked sources: Zipf rank 0 = highest degree, the realistic
  // "popular vertices are big" serving shape.
  std::vector<VertexId> sources = SourcesOf(ds.edges, 0);
  std::sort(sources.begin(), sources.end(), [&](VertexId a, VertexId b) {
    return graph.Degree(a, 0) > graph.Degree(b, 0);
  });

  const std::size_t batch = 1u << 14;
  const std::size_t fanout = 50;
  const int rounds = 4;
  Xoshiro256 seed_rng(99);
  const std::vector<VertexId> seeds =
      ZipfSeedBatch(sources, batch, /*exponent=*/1.0, seed_rng);

  std::printf("\n--- %s: Zipf(1.0) hot-vertex serving, %zu seeds x %d "
              "rounds, fanout %zu ---\n",
              ds.name.c_str(), batch, rounds, fanout);
  std::printf("%-10s %14s %14s %10s %10s\n", "mode", "cache off",
              "cache on", "speedup", "hit rate");
  PrintRule();

  for (bool weighted : {true, false}) {
    std::vector<VertexId> out;

    // Cache off: straight down the ITS+FTS descent via the topology layer
    // (identical to GraphStore sampling with the cache disabled).
    Xoshiro256 rng_off(7);
    Timer t_off;
    for (int r = 0; r < rounds; ++r) {
      for (VertexId s : seeds) {
        out.clear();
        graph.topology(0).SampleNeighbors(s, fanout, weighted, rng_off, &out);
      }
    }
    const double off_ms = t_off.ElapsedMillis();

    // Cache on: one warm-up pass (admission wants admit_after_misses
    // touches), then the measured rounds.
    graph.sample_cache()->Clear();
    graph.sample_cache()->ResetStats();
    Xoshiro256 rng_on(7);
    for (int w = 0; w < 2; ++w) {
      for (VertexId s : seeds) {
        out.clear();
        graph.SampleNeighbors(s, fanout, weighted, rng_on, &out, 0);
      }
    }
    graph.sample_cache()->ResetStats();
    Timer t_on;
    for (int r = 0; r < rounds; ++r) {
      for (VertexId s : seeds) {
        out.clear();
        graph.SampleNeighbors(s, fanout, weighted, rng_on, &out, 0);
      }
    }
    const double on_ms = t_on.ElapsedMillis();

    const SampleCacheStats stats = graph.sample_cache()->Stats();
    const double total_draws =
        static_cast<double>(batch) * rounds * static_cast<double>(fanout);
    const char* mode = weighted ? "weighted" : "uniform";
    std::printf("%-10s %12.2fms %12.2fms %9.2fx %9.1f%%\n", mode, off_ms,
                on_ms, off_ms / on_ms, 100.0 * stats.HitRate());

    json->Rec()
        .Str("dataset", ds.name)
        .Str("section", "zipf_cache")
        .Str("mode", mode)
        .Num("zipf_exponent", 1.0)
        .Num("batch", static_cast<std::uint64_t>(batch))
        .Num("fanout", static_cast<std::uint64_t>(fanout))
        .Num("rounds", static_cast<std::uint64_t>(rounds))
        .Num("cache_off_ms", off_ms)
        .Num("cache_on_ms", on_ms)
        .Num("speedup", off_ms / on_ms)
        .Num("cache_off_ksamples_per_sec", total_draws / off_ms)
        .Num("cache_on_ksamples_per_sec", total_draws / on_ms)
        .Num("hit_rate", stats.HitRate())
        .Num("cache_entries",
             static_cast<std::uint64_t>(graph.sample_cache()->size()))
        .Num("cache_bytes", static_cast<std::uint64_t>(
                                graph.sample_cache()->MemoryUsage()));
  }

  // Hit-path microbench + assert: pin the hottest vertex, warm its cache
  // entry, then time pure-hit batch requests. Every request must be served
  // by ONE cache lookup + ONE AliasTable::SampleBatch call; the assert
  // guards against per-draw overhead (k lookups, k table walks) creeping
  // back into SampleCache::Entry::Draw, by requiring (a) every timed
  // request to be a hit and (b) the cached batch to beat the uncached
  // descent on the same vertex.
  {
    const VertexId hot = sources.front();
    const std::size_t requests = 20000;
    std::vector<VertexId> out;
    Xoshiro256 rng(21);
    for (int w = 0; w < 3; ++w) {  // admission wants two misses
      out.clear();
      graph.SampleNeighbors(hot, fanout, /*weighted=*/true, rng, &out, 0);
    }
    graph.sample_cache()->ResetStats();
    Timer t_hit;
    for (std::size_t i = 0; i < requests; ++i) {
      out.clear();
      graph.SampleNeighbors(hot, fanout, /*weighted=*/true, rng, &out, 0);
    }
    const double hit_ms = t_hit.ElapsedMillis();

    Xoshiro256 rng_ref(21);
    Timer t_ref;
    for (std::size_t i = 0; i < requests; ++i) {
      out.clear();
      graph.topology(0).SampleNeighbors(hot, fanout, /*weighted=*/true,
                                        rng_ref, &out);
    }
    const double ref_ms = t_ref.ElapsedMillis();

    const SampleCacheStats hs = graph.sample_cache()->Stats();
    const double draws = static_cast<double>(requests) *
                         static_cast<double>(fanout);
    std::printf("hit-path microbench: %.1f ns/draw cached vs %.1f ns/draw "
                "descent (%.2fx), %llu/%zu hits\n", hit_ms * 1e6 / draws,
                ref_ms * 1e6 / draws, ref_ms / hit_ms,
                static_cast<unsigned long long>(hs.hits), requests);
    if (hs.hits != requests || hit_ms >= ref_ms) {
      std::fprintf(stderr,
                   "hit-path microbench ASSERT FAILED: hits=%llu/%zu, "
                   "cached %.2fms vs descent %.2fms\n",
                   static_cast<unsigned long long>(hs.hits), requests,
                   hit_ms, ref_ms);
      std::abort();
    }
    json->Rec()
        .Str("dataset", ds.name)
        .Str("section", "cache_hit_microbench")
        .Num("requests", static_cast<std::uint64_t>(requests))
        .Num("fanout", static_cast<std::uint64_t>(fanout))
        .Num("hit_ns_per_draw", hit_ms * 1e6 / draws)
        .Num("descent_ns_per_draw", ref_ms * 1e6 / draws)
        .Num("speedup", ref_ms / hit_ms);
  }
}

}  // namespace

int main() {
  std::printf("=== Figure 10: sampling time by batch size ===\n");
  std::printf("(scale factor %.2f)\n", DatasetScale());
  JsonRecords json("fig10_sampling");

  for (const Dataset& ds : MakeAllDatasets()) {
    auto systems = MakeAllSystems(ds.num_relations);
    for (auto& sys : systems) BuildSystem(sys, ds.edges);
    // Sampling runs on relation 0 (the sole relation of the RMAT sets,
    // User-Live for wechat-mini).
    const std::vector<VertexId> sources = SourcesOf(ds.edges, 0);

    std::printf("\n--- %s: neighbour sampling, 50 per seed (Fig. 10a-c) "
                "---\n",
                ds.name.c_str());
    std::printf("%-10s %12s %12s %12s %14s\n", "batch", "AliGraph",
                "PlatoGL", "PlatoD2GL", "w/o CP");
    PrintRule();
    for (int logn = 10; logn <= 14; ++logn) {
      const auto seeds = SeedBatch(sources, 1u << logn);
      std::printf("2^%-8d", logn);
      std::vector<double> ms;
      for (auto& sys : systems) {
        Xoshiro256 rng(7);
        Timer t;
        std::vector<VertexId> out;
        for (VertexId s : seeds) {
          out.clear();
          sys.rel(0).SampleNeighbors(s, 50, rng, &out);
        }
        ms.push_back(t.ElapsedMillis());
        json.Rec()
            .Str("dataset", ds.name)
            .Str("section", "neighbor_sampling")
            .Str("system", sys.name)
            .Num("log2_batch", static_cast<std::uint64_t>(logn))
            .Num("ms", ms.back());
      }
      std::printf(" %9.2fms %9.2fms %9.2fms %11.2fms   (D2GL %4.1fx vs "
                  "PlatoGL)\n",
                  ms[0], ms[1], ms[2], ms[3], ms[1] / ms[2]);
    }

    std::printf("\n--- %s: 2-hop subgraph sampling, 25 x 10 (Fig. 10d-f) "
                "---\n",
                ds.name.c_str());
    std::printf("%-10s %12s %12s %12s %14s\n", "batch", "AliGraph",
                "PlatoGL", "PlatoD2GL", "w/o CP");
    PrintRule();
    for (int logn = 8; logn <= 12; ++logn) {
      const auto seeds = SeedBatch(sources, 1u << logn);
      std::printf("2^%-8d", logn);
      std::vector<double> ms;
      for (auto& sys : systems) {
        Xoshiro256 rng(13);
        ms.push_back(TwoHopMillis(sys.rel(0), seeds, 25, 10, rng));
        json.Rec()
            .Str("dataset", ds.name)
            .Str("section", "twohop_sampling")
            .Str("system", sys.name)
            .Num("log2_batch", static_cast<std::uint64_t>(logn))
            .Num("ms", ms.back());
      }
      std::printf(" %9.2fms %9.2fms %9.2fms %11.2fms   (D2GL %4.1fx vs "
                  "PlatoGL)\n",
                  ms[0], ms[1], ms[2], ms[3], ms[1] / ms[2]);
    }

    RunZipfCacheMode(ds, &json);
  }
  std::printf("\npaper shape: PlatoD2GL faster than PlatoGL everywhere "
              "(up to 2.9x neighbour, up to 10.1x subgraph) and faster "
              "than its w/o-CP ablation; cache-on Zipf serving >= 2x "
              "cache-off\n");
  if (json.WriteFile("BENCH_fig10_sampling.json")) {
    std::printf("wrote BENCH_fig10_sampling.json\n");
  } else {
    std::fprintf(stderr, "failed to write BENCH_fig10_sampling.json\n");
  }
  return 0;
}
