// Figure 10 reproduction: sampling time by batch size.
//
//   (a-c) neighbour sampling, 50 neighbours per seed, batch 2^10 .. 2^14
//   (d-f) 2-hop subgraph sampling (fan-out 25 x 10), batch 2^8 .. 2^12
//
// Paper result: PlatoD2GL beats PlatoGL by up to 2.9x on neighbour
// sampling and up to 10.1x on subgraph sampling (WeChat); the compressed
// system also beats its own w/o-CP ablation thanks to cache effects.
// AliGraph is competitive per-sample (alias tables are O(1)) but pays the
// rebuild-on-mutation and memory costs shown in Fig. 8 / Table IV.
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"

using namespace platod2gl;
using namespace platod2gl::bench;

namespace {

// Generic 2-hop expansion over the NeighborStore interface so every
// system runs the identical subgraph workload.
double TwoHopMillis(NeighborStore& store, const std::vector<VertexId>& seeds,
                    std::size_t fanout1, std::size_t fanout2,
                    Xoshiro256& rng) {
  Timer t;
  std::vector<VertexId> hop1, hop2;
  for (VertexId s : seeds) {
    hop1.clear();
    if (!store.SampleNeighbors(s, fanout1, rng, &hop1)) continue;
    for (VertexId u : hop1) {
      hop2.clear();
      store.SampleNeighbors(u, fanout2, rng, &hop2);
    }
  }
  return t.ElapsedMillis();
}

}  // namespace

int main() {
  std::printf("=== Figure 10: sampling time by batch size ===\n");
  std::printf("(scale factor %.2f)\n", DatasetScale());

  for (const Dataset& ds : MakeAllDatasets()) {
    auto systems = MakeAllSystems(ds.num_relations);
    for (auto& sys : systems) BuildSystem(sys, ds.edges);
    // Sampling runs on relation 0 (the sole relation of the RMAT sets,
    // User-Live for wechat-mini).
    const std::vector<VertexId> sources = SourcesOf(ds.edges, 0);

    std::printf("\n--- %s: neighbour sampling, 50 per seed (Fig. 10a-c) "
                "---\n",
                ds.name.c_str());
    std::printf("%-10s %12s %12s %12s %14s\n", "batch", "AliGraph",
                "PlatoGL", "PlatoD2GL", "w/o CP");
    PrintRule();
    for (int logn = 10; logn <= 14; ++logn) {
      const auto seeds = SeedBatch(sources, 1u << logn);
      std::printf("2^%-8d", logn);
      std::vector<double> ms;
      for (auto& sys : systems) {
        Xoshiro256 rng(7);
        Timer t;
        std::vector<VertexId> out;
        for (VertexId s : seeds) {
          out.clear();
          sys.rel(0).SampleNeighbors(s, 50, rng, &out);
        }
        ms.push_back(t.ElapsedMillis());
      }
      std::printf(" %9.2fms %9.2fms %9.2fms %11.2fms   (D2GL %4.1fx vs "
                  "PlatoGL)\n",
                  ms[0], ms[1], ms[2], ms[3], ms[1] / ms[2]);
    }

    std::printf("\n--- %s: 2-hop subgraph sampling, 25 x 10 (Fig. 10d-f) "
                "---\n",
                ds.name.c_str());
    std::printf("%-10s %12s %12s %12s %14s\n", "batch", "AliGraph",
                "PlatoGL", "PlatoD2GL", "w/o CP");
    PrintRule();
    for (int logn = 8; logn <= 12; ++logn) {
      const auto seeds = SeedBatch(sources, 1u << logn);
      std::printf("2^%-8d", logn);
      std::vector<double> ms;
      for (auto& sys : systems) {
        Xoshiro256 rng(13);
        ms.push_back(TwoHopMillis(sys.rel(0), seeds, 25, 10, rng));
      }
      std::printf(" %9.2fms %9.2fms %9.2fms %11.2fms   (D2GL %4.1fx vs "
                  "PlatoGL)\n",
                  ms[0], ms[1], ms[2], ms[3], ms[1] / ms[2]);
    }
  }
  std::printf("\npaper shape: PlatoD2GL faster than PlatoGL everywhere "
              "(up to 2.9x neighbour, up to 10.1x subgraph) and faster "
              "than its w/o-CP ablation\n");
  return 0;
}
