// Figure 9 reproduction: time cost of dynamic updates on the WeChat
// dataset, varying batch size 2^10 .. 2^16.
//
// Paper result: PlatoD2GL is faster than PlatoGL at every batch size (up
// to 5.4x); at batch 2^16 PlatoD2GL takes < 20 ms while PlatoGL needs
// > 120 ms. The gap comes from FSTable's O(log n_L) in-place updates and
// deletions vs CSTable's O(n_L) suffix rewrites.
#include <cstdio>

#include "bench_util.h"

using namespace platod2gl;
using namespace platod2gl::bench;

int main() {
  std::printf(
      "=== Figure 9: dynamic-update time on wechat-mini, by batch size "
      "===\n");
  std::printf("(scale factor %.2f; mixed stream: 40%% insert, 40%% "
              "in-place, 20%% delete)\n\n",
              DatasetScale());

  const Dataset ds = MakeWeChatMini();
  auto systems = MakeAllSystems(ds.num_relations);
  for (auto& sys : systems) BuildSystem(sys, ds.edges);

  UpdateStreamParams sp;
  sp.num_ops = (1u << 16) * 2;  // enough for the largest batch
  sp.insert_fraction = 0.4;
  sp.update_fraction = 0.4;
  const std::vector<EdgeUpdate> ops = MakeUpdateStream(ds.edges, sp);

  std::printf("%-10s %12s %12s %12s %14s\n", "batch", "AliGraph", "PlatoGL",
              "PlatoD2GL", "w/o CP");
  PrintRule();

  std::size_t cursor = 0;
  for (int logn = 10; logn <= 16; ++logn) {
    const std::size_t batch = 1u << logn;
    std::printf("2^%-8d", logn);
    std::vector<double> ms;
    for (auto& sys : systems) {
      ms.push_back(ApplyUpdates(sys, ops, cursor, batch));
    }
    cursor += batch;
    std::printf(" %9.2fms %9.2fms %9.2fms %11.2fms   (D2GL %4.1fx vs "
                "PlatoGL)\n",
                ms[0], ms[1], ms[2], ms[3], ms[1] / ms[2]);
  }
  std::printf("\npaper shape: PlatoD2GL fastest at every batch size "
              "(up to 5.4x vs PlatoGL; <20ms at 2^16)\n");
  return 0;
}
