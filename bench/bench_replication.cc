// Robustness bench: ingest throughput and replica staleness as the
// per-shard replica count scales (docs/replication.md).
//
// One writer streams update batches through GraphCluster::ApplyBatch
// with async WAL shipping enabled, so the replication pump overlaps
// ingestion exactly as a deployment would run it. After every few
// batches the per-replica watermark lag (primary wal_seq - replica
// applied_seq, in WAL entries) is probed into a histogram; p50/p99 of
// that lag is the staleness a bounded-staleness read would observe.
//
// Accounting: this is a shared-host simulation of a distributed system,
// so the replicas' own apply work (decode + store apply, metered as
// replica_apply_nanos on a thread-CPU clock) burns cycles that in a
// deployment belong to *other machines*. The primary-side throughput —
// what the gate protects — is therefore priced as
//     updates / (process CPU - replica apply CPU),
// which charges the ingest path for everything replication adds on the
// primary (WAL window copies, encoding, fault draws, lock waits) but
// not for remote apply. Wall-clock throughput is reported alongside for
// transparency; on a single-core host it degrades with replica count by
// construction, telling you about the host, not the system.
//
// Results land in BENCH_replication.json, and the process exits
// non-zero if the first replica costs more than 15% of the
// replication-disabled primary-side throughput.
#include <ctime>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/histogram.h"
#include "common/timer.h"
#include "dist/cluster.h"

using namespace platod2gl;
using namespace platod2gl::bench;

namespace {

constexpr std::size_t kVertices = 4000;
// Few large batches: each ApplyBatch kicks the pump once, and on a
// single-core host every pump wake is two context switches charged to
// the ingest thread's cache. 1000-update batches spend ~15% of the
// ingest thread on switch/pollution overhead that a dedicated-core
// deployment never sees; streaming ingest batches are this coarse in
// the paper's pipeline anyway.
constexpr std::size_t kBatches = 40;
constexpr std::size_t kBatchSize = 5000;
constexpr double kMaxOneReplicaLoss = 0.15;

double ProcessCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct RunResult {
  double wall_secs = 0.0;
  double primary_cpu_secs = 0.0;  ///< process CPU minus replica apply CPU
  double replica_apply_secs = 0.0;
  double pump_cpu_secs = 0.0;  ///< total pump-thread CPU (ship + apply)
  double lag_p50 = 0.0;  ///< WAL entries behind, median probe
  double lag_p99 = 0.0;
  std::uint64_t bytes_shipped = 0;
  std::uint64_t entries_applied = 0;
  std::uint64_t retransmits = 0;
};

RunResult RunIngest(std::size_t replicas) {
  ClusterConfig cfg;
  cfg.num_shards = 4;
  cfg.replication.num_replicas = replicas;
  cfg.replication.async_ship = replicas > 0;
  // Chunks sized for throughput: the test default (64) is tuned for
  // fault-interleaving coverage, not for a fault-free bulk stream.
  cfg.replication.max_entries_per_append = 256;
  GraphCluster cluster(cfg);

  // Lag samples are dimensionless entry counts; the histogram's "nanos"
  // buckets just give us log-spaced percentiles over them.
  LatencyHistogram lag;
  Xoshiro256 rng(11);
  const double cpu0 = ProcessCpuSeconds();
  Timer timer;
  for (std::size_t b = 0; b < kBatches; ++b) {
    std::vector<EdgeUpdate> batch;
    batch.reserve(kBatchSize);
    for (std::size_t i = 0; i < kBatchSize; ++i) {
      EdgeUpdate u;
      const std::uint64_t roll = rng.NextUint64(10);
      u.kind = roll < 7   ? UpdateKind::kInsert
               : roll < 9 ? UpdateKind::kInPlaceUpdate
                          : UpdateKind::kDelete;
      u.edge = {rng.NextUint64(kVertices), rng.NextUint64(kVertices),
                1.0 + static_cast<double>(rng.NextUint64(100)), 0};
      batch.push_back(u);
    }
    (void)cluster.ApplyBatch(batch);
    if (replicas > 0 && (b & 7) == 0) {
      for (std::size_t s = 0; s < cfg.num_shards; ++s) {
        for (const auto& p : cluster.replication()->Probe(s)) {
          lag.Record(p.head_seq - p.applied_seq);
        }
      }
    }
  }
  RunResult r;
  if (replicas > 0 && !cluster.FlushReplication().ok()) {
    std::fprintf(stderr, "replicas failed to converge after ingest\n");
    std::exit(1);
  }
  r.wall_secs = timer.ElapsedSeconds();
  const double cpu = ProcessCpuSeconds() - cpu0;

  if (replicas > 0) {
    // Read through the cluster's metric registry — the same page `pd2gl
    // metrics` exports — so the JSON the perf trajectory tracks is the
    // exported series, not a parallel bookkeeping path.
    const obs::RegistrySnapshot snap = cluster.metrics().Snapshot();
    r.replica_apply_secs =
        static_cast<double>(
            snap.Value("pd2gl_replication_replica_apply_nanos")) *
        1e-9;
    r.pump_cpu_secs =
        static_cast<double>(snap.Value("pd2gl_replication_pump_cpu_nanos")) *
        1e-9;
    r.primary_cpu_secs = cpu - r.replica_apply_secs;
    r.lag_p50 = static_cast<double>(lag.PercentileNanos(50));
    r.lag_p99 = static_cast<double>(lag.PercentileNanos(99));
    r.bytes_shipped = snap.Value("pd2gl_replication_bytes_shipped");
    r.entries_applied = snap.Value("pd2gl_replication_entries_applied");
    r.retransmits = snap.Value("pd2gl_replication_rejected_appends") +
                    snap.Value("pd2gl_replication_duplicate_entries");
  } else {
    r.primary_cpu_secs = cpu;
  }
  return r;
}

}  // namespace

int main() {
  std::printf("=== Robustness: replication throughput & staleness ===\n\n");
  std::printf(
      "%zu updates over %zu shards, async WAL shipping, fault-free\n\n",
      kBatches * kBatchSize, static_cast<std::size_t>(4));
  std::printf("%-9s %13s %12s %9s %9s %14s %12s\n", "replicas",
              "primary-ups/s", "wall-ups/s", "lag p50", "lag p99",
              "bytes shipped", "retransmits");
  PrintRule();

  JsonRecords json("replication");
  const std::size_t total = kBatches * kBatchSize;
  double rate0 = 0.0;
  double rate1 = 0.0;
  for (const std::size_t replicas : {0u, 1u, 2u}) {
    // Best-of-5: a single-core shared host schedules two busy threads
    // noisily (±10% run to run); the fastest repetition is the least
    // scheduler-perturbed estimate of the actual cost.
    RunResult r = RunIngest(replicas);
    for (int rep = 1; rep < 5; ++rep) {
      const RunResult again = RunIngest(replicas);
      if (again.primary_cpu_secs < r.primary_cpu_secs) r = again;
    }
    const double rate = static_cast<double>(total) / r.primary_cpu_secs;
    const double wall_rate = static_cast<double>(total) / r.wall_secs;
    if (replicas == 0) rate0 = rate;
    if (replicas == 1) rate1 = rate;
    std::printf("%-9zu %13.0f %12.0f %9.0f %9.0f %14llu %12llu\n", replicas,
                rate, wall_rate, r.lag_p50, r.lag_p99,
                (unsigned long long)r.bytes_shipped,
                (unsigned long long)r.retransmits);
    json.Rec()
        .Num("replicas", static_cast<std::uint64_t>(replicas))
        .Num("updates", static_cast<std::uint64_t>(total))
        .Num("updates_per_sec", rate)
        .Num("wall_updates_per_sec", wall_rate)
        .Num("replica_apply_secs", r.replica_apply_secs)
        .Num("pump_cpu_secs", r.pump_cpu_secs)
        .Num("staleness_p50_entries", r.lag_p50)
        .Num("staleness_p99_entries", r.lag_p99)
        .Num("bytes_shipped", r.bytes_shipped)
        .Num("entries_applied", r.entries_applied)
        .Num("retransmits", r.retransmits);
  }
  PrintRule();

  if (json.WriteFile("BENCH_replication.json")) {
    std::printf("wrote BENCH_replication.json\n");
  } else {
    std::fprintf(stderr, "failed to write BENCH_replication.json\n");
  }

  // Regression gate: the first replica must cost the primary <= 15%.
  const double floor = (1.0 - kMaxOneReplicaLoss) * rate0;
  if (rate1 < floor) {
    std::fprintf(stderr,
                 "FAIL: 1-replica primary-side throughput %.0f/s is below "
                 "%.0f/s (>%.0f%% drop vs replication off at %.0f/s)\n",
                 rate1, floor, kMaxOneReplicaLoss * 100.0, rate0);
    return 1;
  }
  std::printf("gate ok: 1-replica primary cost within %.0f%% of baseline\n",
              kMaxOneReplicaLoss * 100.0);
  return 0;
}
