// Table IV reproduction: memory cost after graph building.
//
// Paper result (per dataset): PlatoD2GL uses the least memory —
// 66.8-79.8% below the second-best system — and compression (CP-IDs)
// alone saves 18-48.6% (the "w/o CP" ablation row). AliGraph is o.o.m.
// on WeChat because of its duplicated sampling structures; PlatoGL pays
// per-block key indexing and whole-block allocation.
#include <cstdio>

#include "bench_util.h"
#include "common/memory.h"

using namespace platod2gl;
using namespace platod2gl::bench;

int main() {
  std::printf("=== Table IV: memory cost after graph building ===\n");
  std::printf("(scale factor %.2f)\n\n", DatasetScale());
  std::printf("%-14s %12s %12s %12s %14s %10s %9s\n", "dataset", "AliGraph",
              "PlatoGL", "PlatoD2GL", "w/o CP", "vs 2nd", "vs noCP");
  PrintRule();

  for (const Dataset& ds : MakeAllDatasets()) {
    auto systems = MakeAllSystems(ds.num_relations);
    for (auto& sys : systems) BuildSystem(sys, ds.edges);

    std::vector<std::size_t> bytes;
    for (auto& sys : systems) bytes.push_back(sys.MemoryUsage());

    // "Second best" compares against the real baselines only, as the
    // paper does — the w/o-CP ablation is reported separately.
    const std::size_t d2gl = bytes[2];
    const std::size_t second_best = std::min(bytes[0], bytes[1]);
    const double vs_second =
        100.0 * (1.0 - static_cast<double>(d2gl) / second_best);
    const double vs_nocp =
        100.0 * (1.0 - static_cast<double>(d2gl) / bytes[3]);

    std::printf("%-14s %12s %12s %12s %14s %9.1f%% %8.1f%%\n",
                ds.name.c_str(), HumanBytes(bytes[0]).c_str(),
                HumanBytes(bytes[1]).c_str(), HumanBytes(bytes[2]).c_str(),
                HumanBytes(bytes[3]).c_str(), vs_second, vs_nocp);

    // Breakdown of where PlatoD2GL's saving comes from.
    const MemoryBreakdown d2 = systems[2].Memory();
    const MemoryBreakdown pg = systems[1].Memory();
    std::printf("%-14s   key/index overhead: PlatoD2GL %s vs PlatoGL %s\n",
                "", HumanBytes(d2.key_bytes).c_str(),
                HumanBytes(pg.key_bytes).c_str());
  }
  std::printf("\npaper shape: PlatoD2GL lowest everywhere (66.8-79.8%% "
              "below 2nd best); CP saves 18-48.6%%\n");
  return 0;
}
