// Table V reproduction: distribution of updating operations over leaf vs
// non-leaf samtree nodes while building the WeChat dataset, varying node
// capacity 64 .. 1024.
//
// Paper result: leaf operations dominate (>98%) at every capacity, and
// the internal share shrinks as capacity grows (1.91% at 64 down to
// 0.02% at 1024) — which is why making *leaf* updates cheap (FSTable)
// matters far more than the internal CSTables.
//
// Counting note: we count *structural* node modifications (appends,
// removals, splits, child adoptions), not the O(c)-bounded aggregation
// refreshes that every ancestor performs — the paper's ratios only make
// sense under this interpretation (see EXPERIMENTS.md).
#include <cstdio>

#include "baselines/samtree_store.h"
#include "bench_util.h"

using namespace platod2gl;
using namespace platod2gl::bench;

int main() {
  std::printf(
      "=== Table V: leaf vs non-leaf update operations (wechat-mini) "
      "===\n");
  std::printf("(scale factor %.2f)\n\n", DatasetScale());
  const Dataset ds = MakeWeChatMini();

  std::printf("%-14s %14s %14s %10s %10s\n", "capacity", "leaf ops",
              "internal ops", "leaf %", "internal %");
  PrintRule();

  for (std::uint32_t capacity : {64u, 128u, 256u, 512u, 1024u}) {
    SamtreeStore store(SamtreeConfig{.node_capacity = capacity,
                                     .alpha = 0,
                                     .compress_ids = true});
    BuildSamtreeStore(store, ds.edges);
    const SamtreeOpStats stats = store.topology().AggregateStats();
    const double total =
        static_cast<double>(stats.leaf_ops + stats.internal_ops);
    std::printf("%-14u %14llu %14llu %9.2f%% %9.3f%%\n", capacity,
                static_cast<unsigned long long>(stats.leaf_ops),
                static_cast<unsigned long long>(stats.internal_ops),
                100.0 * stats.leaf_ops / total,
                100.0 * stats.internal_ops / total);
  }
  std::printf("\npaper shape: leaf ops >98%% at every capacity; internal "
              "share shrinks with capacity (1.91%% -> 0.02%%)\n");
  return 0;
}
