// Ablation: alpha-Split vs sort-based leaf splitting (paper Algorithm 1,
// Theorem 1, Fig. 11(d)'s mechanism).
//
// Expected shape: sort-based splitting is O(n log n); alpha-Split is O(n)
// average, and larger alpha shaves constants further by accepting the
// first pivot that lands inside the slack window.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "core/alpha_split.h"

namespace platod2gl {
namespace {

std::pair<std::vector<VertexId>, std::vector<Weight>> RandomLeaf(
    std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<VertexId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  // Fisher-Yates shuffle: unordered leaf, unique IDs.
  for (std::size_t i = n; i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.NextUint64(i)]);
  }
  std::vector<Weight> weights;
  weights.reserve(n);
  for (std::size_t i = 0; i < n; ++i) weights.push_back(0.05 + rng.NextDouble());
  return {std::move(ids), std::move(weights)};
}

void BM_SortBasedSplit(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const auto [ids0, weights0] = RandomLeaf(n, 11);
  for (auto _ : state) {
    auto ids = ids0;
    auto weights = weights0;
    // The greedy method the paper rejects: sort pairs, cut at the middle.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return ids[a] < ids[b]; });
    benchmark::DoNotOptimize(order[n / 2]);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SortBasedSplit)
    ->RangeMultiplier(4)
    ->Range(256, 1 << 14)
    ->Complexity(benchmark::oNLogN);

template <int kAlpha>
void BM_AlphaSplit(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const auto [ids0, weights0] = RandomLeaf(n, 11);
  for (auto _ : state) {
    auto ids = ids0;
    auto weights = weights0;
    benchmark::DoNotOptimize(AlphaSplit(ids, weights, n / 2, kAlpha));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AlphaSplit<0>)
    ->RangeMultiplier(4)
    ->Range(256, 1 << 14)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_AlphaSplit<8>)->RangeMultiplier(4)->Range(256, 1 << 14);
BENCHMARK(BM_AlphaSplit<64>)->RangeMultiplier(4)->Range(256, 1 << 14);

}  // namespace
}  // namespace platod2gl

BENCHMARK_MAIN();
