// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every comparative bench drives the same four systems through the
// NeighborStore interface: PlatoD2GL, PlatoD2GL w/o CP (compression
// ablation), PlatoGL and AliGraph. Output is printed as the paper's
// tables/figures report it (one row per dataset/batch-size, one column
// per system) so EXPERIMENTS.md can quote it directly.
#pragma once

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "baselines/aligraph_store.h"
#include "baselines/platogl_store.h"
#include "baselines/samtree_store.h"
#include "common/timer.h"
#include "common/types.h"
#include "gen/datasets.h"
#include "gen/generators.h"

namespace platod2gl::bench {

/// One system under test: a heterogeneous deployment keeps one topology
/// store per edge relation (exactly as the paper's storage layer does),
/// routed by EdgeType. Mixing relations into one store would, among other
/// things, destroy CP-IDs prefix sharing across ID namespaces.
struct SystemUnderTest {
  std::string name;
  std::vector<std::unique_ptr<NeighborStore>> relations;

  NeighborStore& rel(EdgeType t) { return *relations[t]; }

  void FinishBatch() {
    for (auto& r : relations) r->FinishBatch();
  }

  MemoryBreakdown Memory() const {
    MemoryBreakdown total;
    for (const auto& r : relations) {
      const MemoryBreakdown m = r->Memory();
      total.topology_bytes += m.topology_bytes;
      total.index_bytes += m.index_bytes;
      total.key_bytes += m.key_bytes;
      total.other_bytes += m.other_bytes;
    }
    return total;
  }
  std::size_t MemoryUsage() const { return Memory().Total(); }
};

/// The paper's system line-up, in its column order.
inline std::vector<SystemUnderTest> MakeAllSystems(
    std::size_t num_relations = 1, std::uint32_t node_capacity = 256) {
  std::vector<SystemUnderTest> systems(4);
  systems[0].name = "AliGraph";
  systems[1].name = "PlatoGL";
  systems[2].name = "PlatoD2GL";
  systems[3].name = "PlatoD2GL w/o CP";
  for (std::size_t r = 0; r < num_relations; ++r) {
    systems[0].relations.push_back(std::make_unique<AliGraphStore>());
    systems[1].relations.push_back(std::make_unique<PlatoGLStore>(
        PlatoGLStore::Config{.block_capacity = node_capacity}));
    systems[2].relations.push_back(
        std::make_unique<SamtreeStore>(SamtreeConfig{
            .node_capacity = node_capacity,
            .alpha = 0,
            .compress_ids = true}));
    systems[3].relations.push_back(
        std::make_unique<SamtreeStore>(SamtreeConfig{
            .node_capacity = node_capacity,
            .alpha = 0,
            .compress_ids = false}));
  }
  return systems;
}

/// Stream-insert a duplicate-free edge list as a *dynamic* build: edges
/// arrive in ingest batches and the system must be sample-ready after
/// each one (FinishBatch), as the online deployment requires. Returns
/// seconds.
inline double BuildSystem(SystemUnderTest& sys, const std::vector<Edge>& edges,
                          std::size_t ingest_batch = 1u << 16) {
  Timer t;
  std::size_t in_batch = 0;
  for (const Edge& e : edges) {
    sys.rel(e.type).AddEdgeFast(e.src, e.dst, e.weight);
    if (++in_batch == ingest_batch) {
      sys.FinishBatch();
      in_batch = 0;
    }
  }
  sys.FinishBatch();
  return t.ElapsedSeconds();
}

/// Apply a slice of a dynamic update stream and restore sample-readiness
/// (FinishBatch — this is where AliGraph pays its deferred alias-table
/// rebuilds); returns milliseconds.
inline double ApplyUpdates(SystemUnderTest& sys,
                           const std::vector<EdgeUpdate>& ops,
                           std::size_t begin, std::size_t count) {
  Timer t;
  for (std::size_t i = begin; i < begin + count && i < ops.size(); ++i) {
    sys.rel(ops[i].edge.type).Apply(ops[i]);
  }
  sys.FinishBatch();
  return t.ElapsedMillis();
}

/// Unique source vertices of one relation, in first-appearance order.
inline std::vector<VertexId> SourcesOf(const std::vector<Edge>& edges,
                                       EdgeType type = 0) {
  std::set<VertexId> seen;
  std::vector<VertexId> sources;
  for (const Edge& e : edges) {
    if (e.type == type && seen.insert(e.src).second) {
      sources.push_back(e.src);
    }
  }
  return sources;
}

/// A batch of sampling seeds cycled from the source list.
inline std::vector<VertexId> SeedBatch(const std::vector<VertexId>& sources,
                                       std::size_t n) {
  std::vector<VertexId> seeds;
  seeds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    seeds.push_back(sources[i % sources.size()]);
  }
  return seeds;
}

/// A batch of sampling seeds drawn Zipf(s) over the source list: seed
/// rank r is picked with P ~ 1/(r+1)^s, so the head of `sources` absorbs
/// most of the traffic — the power-law serving skew the hot-vertex
/// sampling cache exploits. Pass sources sorted hottest-first (e.g. by
/// degree) for the realistic "popular vertices are big" shape.
inline std::vector<VertexId> ZipfSeedBatch(
    const std::vector<VertexId>& sources, std::size_t n, double exponent,
    Xoshiro256& rng) {
  ZipfSampler zipf(sources.size(), exponent);
  std::vector<VertexId> seeds;
  seeds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    seeds.push_back(sources[zipf.Sample(rng)]);
  }
  return seeds;
}

inline void PrintRule() {
  std::printf(
      "--------------------------------------------------------------------"
      "----\n");
}

/// Minimal machine-readable results writer: a flat array of records, one
/// JSON object per measured configuration, so the perf trajectory can be
/// tracked across PRs (`BENCH_<name>.json` files at the repo root).
/// Values are stored pre-rendered; no external JSON dependency.
class JsonRecords {
 public:
  explicit JsonRecords(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Start a new record; subsequent Num/Str calls land in it.
  JsonRecords& Rec() {
    records_.emplace_back();
    return *this;
  }

  JsonRecords& Num(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    records_.back().emplace_back(key, buf);
    return *this;
  }

  JsonRecords& Num(const std::string& key, std::uint64_t value) {
    records_.back().emplace_back(key, std::to_string(value));
    return *this;
  }

  JsonRecords& Str(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    records_.back().emplace_back(key, quoted);
    return *this;
  }

  /// Write {"bench": ..., "results": [...]} to `path`; returns false on
  /// I/O failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [\n",
                 bench_name_.c_str());
    for (std::size_t r = 0; r < records_.size(); ++r) {
      std::fprintf(f, "    {");
      for (std::size_t i = 0; i < records_[r].size(); ++i) {
        std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ",
                     records_[r][i].first.c_str(),
                     records_[r][i].second.c_str());
      }
      std::fprintf(f, "}%s\n", r + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    return std::fclose(f) == 0;
  }

 private:
  using Record = std::vector<std::pair<std::string, std::string>>;
  std::string bench_name_;
  std::vector<Record> records_;
};

}  // namespace platod2gl::bench

namespace platod2gl::bench {

/// Build a single SamtreeStore from a (possibly multi-relation) edge list.
/// Single-system sweeps (Table V, Fig. 11) measure the samtree layer in
/// isolation, so all relations share one store — fine for timing, and the
/// mixed ID namespaces simply exercise the CP-IDs re-encode path.
inline double BuildSamtreeStore(SamtreeStore& store,
                                const std::vector<Edge>& edges) {
  Timer t;
  for (const Edge& e : edges) store.AddEdgeFast(e.src, e.dst, e.weight);
  return t.ElapsedSeconds();
}

/// Same, through the *checked* insertion path (paper Algorithm 2, with
/// the duplicate scan) — this is the cost Fig. 11(b) sweeps: large leaf
/// capacities pay an O(n_L) scan per insert, which is what bends the
/// curve back up past the optimum.
inline double BuildSamtreeStoreChecked(SamtreeStore& store,
                                       const std::vector<Edge>& edges) {
  Timer t;
  for (const Edge& e : edges) store.AddEdge(e.src, e.dst, e.weight);
  return t.ElapsedSeconds();
}

}  // namespace platod2gl::bench
