// Ablation: CP-IDs compression (paper Section VI-A) — memory saved and
// access cost across ID-locality regimes, plus the end-to-end effect on
// a whole topology store (complementing Table IV's w/o-CP rows).
//
// Expected shape: the tighter the ID locality (more shared prefix
// bytes), the bigger the saving — up to ~85% of ID bytes at z=7 — while
// decode stays O(1) and even speeds scans up via smaller cache
// footprints. Adversarial (uniform 64-bit) IDs compress to z=0 with no
// saving and no meaningful penalty.
#include <cstdio>
#include <vector>

#include "baselines/samtree_store.h"
#include "bench_util.h"
#include "common/memory.h"
#include "common/random.h"
#include "core/compressed_ids.h"

using namespace platod2gl;
using namespace platod2gl::bench;

namespace {

struct Regime {
  const char* name;
  VertexId base;
  VertexId spread;
};

}  // namespace

int main() {
  std::printf("=== Ablation: CP-IDs compression ===\n\n");
  constexpr std::size_t kIds = 1u << 16;

  const Regime regimes[] = {
      {"1-byte suffix (z=7)", 0x0102030405060700ULL, 1u << 8},
      {"2-byte suffix (z=6)", 0x0102030405060000ULL, 1u << 16},
      {"4-byte suffix (z=4)", 0x0102030400000000ULL, 1ULL << 32},
      {"uniform 64-bit (z=0)", 0, ~0ULL >> 1},
  };

  std::printf("%-24s %6s %12s %12s %9s %14s\n", "regime", "z", "compressed",
              "raw", "saving", "scan (ns/el)");
  PrintRule();
  for (const Regime& r : regimes) {
    Xoshiro256 rng(5);
    CompressedIdList compressed(true), raw(false);
    std::vector<VertexId> ids;
    for (std::size_t i = 0; i < kIds; ++i) {
      ids.push_back(r.base + rng.NextUint64(r.spread));
    }
    for (VertexId v : ids) {
      compressed.Append(v);
      raw.Append(v);
    }
    // Scan cost: decode every element many times (the leaf Find path).
    Timer t;
    VertexId sink = 0;
    constexpr int kReps = 50;
    for (int rep = 0; rep < kReps; ++rep) {
      for (std::size_t i = 0; i < compressed.size(); ++i) {
        sink ^= compressed.Get(i);
      }
    }
    const double ns_per =
        t.ElapsedSeconds() * 1e9 / (kReps * static_cast<double>(kIds));
    const double saving =
        100.0 * (1.0 - static_cast<double>(compressed.MemoryUsage()) /
                           raw.MemoryUsage());
    std::printf("%-24s %6u %12s %12s %8.1f%% %11.2f  (sink %llu)\n", r.name,
                compressed.prefix_bytes(),
                HumanBytes(compressed.MemoryUsage()).c_str(),
                HumanBytes(raw.MemoryUsage()).c_str(), saving, ns_per,
                static_cast<unsigned long long>(sink & 1));
  }

  // End-to-end: whole-store effect on the dominant WeChat relation
  // (User-Live). One store per relation, as deployed — mixing ID
  // namespaces in one store would artificially cap the shared prefix.
  std::printf("\n--- whole-store effect (wechat-mini User-Live relation) "
              "---\n");
  Dataset ds = MakeWeChatMini();
  std::erase_if(ds.edges, [](const Edge& e) { return e.type != kUserLive; });
  SamtreeStore with_cp(SamtreeConfig{.compress_ids = true});
  SamtreeStore without_cp(SamtreeConfig{.compress_ids = false});
  const double t_cp = BuildSamtreeStore(with_cp, ds.edges);
  const double t_nocp = BuildSamtreeStore(without_cp, ds.edges);
  const std::size_t m_cp = with_cp.MemoryUsage();
  const std::size_t m_nocp = without_cp.MemoryUsage();
  std::printf("with CP:    %10s  build %.3fs\n", HumanBytes(m_cp).c_str(),
              t_cp);
  std::printf("without CP: %10s  build %.3fs\n", HumanBytes(m_nocp).c_str(),
              t_nocp);
  std::printf("memory saving from CP: %.1f%% (paper: 18.0-48.6%%)\n",
              100.0 * (1.0 - static_cast<double>(m_cp) / m_nocp));
  return 0;
}
