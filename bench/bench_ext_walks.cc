// Extension bench: random-walk throughput on top of each topology store.
//
// Weighted random walks stress exactly the per-step weighted-sampling
// primitive the paper optimises (the ITS/FTS lineage comes from the
// KnightKing walk engine). One transition = one weighted draw from the
// current vertex's neighbourhood; systems differ only in their sampling
// index. Also reports the node2vec rejection overhead on the samtree
// store.
#include <cstdio>

#include "bench_util.h"
#include "walk/random_walk.h"

using namespace platod2gl;
using namespace platod2gl::bench;

namespace {

// Generic first-order walk over the NeighborStore interface.
std::size_t WalkSteps(NeighborStore& store,
                      const std::vector<VertexId>& seeds,
                      std::size_t walk_length, Xoshiro256& rng) {
  std::size_t steps = 0;
  std::vector<VertexId> one;
  for (VertexId seed : seeds) {
    VertexId cur = seed;
    for (std::size_t i = 1; i < walk_length; ++i) {
      one.clear();
      if (!store.SampleNeighbors(cur, 1, rng, &one)) break;
      cur = one[0];
      ++steps;
    }
  }
  return steps;
}

}  // namespace

int main() {
  std::printf("=== Extension: random-walk throughput (wechat-mini, "
              "User-Live relation) ===\n\n");
  Dataset ds = MakeWeChatMini();
  auto systems = MakeAllSystems(ds.num_relations);
  for (auto& sys : systems) BuildSystem(sys, ds.edges);
  const std::vector<VertexId> sources = SourcesOf(ds.edges, 0);
  const auto seeds = SeedBatch(sources, 4096);

  std::printf("first-order weighted walks, length 16, 4096 seeds:\n");
  for (auto& sys : systems) {
    Xoshiro256 rng(21);
    Timer t;
    const std::size_t steps = WalkSteps(sys.rel(0), seeds, 16, rng);
    const double secs = t.ElapsedSeconds();
    std::printf("  %-18s %8.2f M steps/s  (%zu steps in %.1f ms)\n",
                sys.name.c_str(), steps / secs / 1e6, steps, secs * 1e3);
  }

  // node2vec second-order walks need HasEdge(prev, cand) checks and
  // rejection sampling — run on the native GraphStore walk engine.
  std::printf("\nnode2vec walks on the PlatoD2GL store (length 16, 4096 "
              "seeds):\n");
  GraphStore graph(GraphStoreConfig{.num_relations = ds.num_relations});
  for (const Edge& e : ds.edges) {
    graph.topology(e.type).AddEdgeUnchecked(e.src, e.dst, e.weight);
  }
  RandomWalker walker(&graph);
  for (const auto& [p, q] : std::vector<std::pair<double, double>>{
           {1.0, 1.0}, {0.5, 2.0}, {2.0, 0.5}, {0.25, 4.0}}) {
    Xoshiro256 rng(22);
    Timer t;
    const WalkBatch walks =
        walker.Walk(seeds, {.walk_length = 16, .p = p, .q = q}, rng);
    std::size_t steps = 0;
    for (const auto& w : walks) steps += w.size() - 1;
    const double secs = t.ElapsedSeconds();
    std::printf("  p=%-5.2f q=%-5.2f %8.2f M steps/s  (%.2f candidate "
                "draws per step)\n",
                p, q, steps / secs / 1e6,
                static_cast<double>(walker.last_candidate_draws()) / steps);
  }
  std::printf("\nexpected shape: samtree within ~2x of the O(1) alias "
              "method per draw, while staying updatable; rejection "
              "overhead stays a small constant factor\n");
  return 0;
}
