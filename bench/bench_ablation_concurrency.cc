// Ablation: latch-free batch updates (PALM-style, Section VI-B) vs the
// latch-based design the paper argues against, vs plain sequential
// application.
//
// Expected shape (multi-core): both parallel modes beat sequential and
// latch-free scales further, since it acquires one lock per source group
// instead of one per update and gets locality from the sorted batch.
// On a 1-core host there is no contention to avoid and no parallelism to
// gain, so the latch-free sort overhead is pure cost — latch-based (which
// degenerates to sequential-with-uncontended-locks) can win; what remains
// observable is that latch-free's *overhead stays bounded* (well within ~2x
// of sequential here) while providing the multi-core path.
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "concurrency/batch_updater.h"

using namespace platod2gl;
using namespace platod2gl::bench;

int main() {
  std::printf("=== Ablation: latch-free vs latch-based batch updates ===\n");
  std::printf("(%u hardware thread(s) available)\n\n",
              std::thread::hardware_concurrency());

  const Dataset ds = MakeWeChatMini();
  UpdateStreamParams sp;
  sp.num_ops = 1u << 16;
  sp.insert_fraction = 0.4;
  sp.update_fraction = 0.4;
  const std::vector<EdgeUpdate> ops = MakeUpdateStream(ds.edges, sp);

  auto preload = [&](TopologyStore* store) {
    for (std::size_t i = 0;
         i < std::min<std::size_t>(ds.edges.size(), 1000000); ++i) {
      const Edge& e = ds.edges[i];
      store->AddEdgeUnchecked(e.src, e.dst, e.weight);
    }
  };

  {
    TopologyStore store;
    preload(&store);
    ThreadPool pool(1);
    BatchUpdater updater(&store, &pool);
    Timer t;
    updater.ApplySequential(ops);
    std::printf("%-22s %10.2f ms\n", "sequential", t.ElapsedMillis());
  }

  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    TopologyStore a, b;
    preload(&a);
    preload(&b);
    ThreadPool pool(threads);

    BatchUpdater free_updater(&a, &pool);
    Timer t1;
    free_updater.ApplyBatch(ops);
    const double latch_free = t1.ElapsedMillis();

    BatchUpdater latch_updater(&b, &pool);
    Timer t2;
    latch_updater.ApplyBatchLatchBased(ops);
    const double latch_based = t2.ElapsedMillis();

    std::printf("%zu thread(s):  latch-free %10.2f ms   latch-based "
                "%10.2f ms   (%.2fx)\n",
                threads, latch_free, latch_based, latch_based / latch_free);
  }
  return 0;
}
