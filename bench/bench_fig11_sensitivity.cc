// Figure 11 reproduction: parameter sensitivity of PlatoD2GL on the
// WeChat dataset.
//
//   (a) dynamic-insertion time by batch size (2^12 .. 2^17): grows with
//       batch size, still < ~25 ms at 2^17 on the paper's cluster.
//   (b) insertion time by samtree node capacity (2^4 .. 2^12): U-shaped,
//       minimum around 2^8 = 256.
//   (c) concurrent update time by thread count (batch 2^12 .. 2^14):
//       decreases as threads increase.
//   (d) total insertion time by slackness alpha: larger alpha -> faster
//       splits -> less time.
#include <cstdio>
#include <thread>

#include "baselines/samtree_store.h"
#include "bench_util.h"
#include "common/thread_pool.h"
#include "concurrency/batch_updater.h"
#include "core/alpha_split.h"

using namespace platod2gl;
using namespace platod2gl::bench;

namespace {

std::vector<EdgeUpdate> InsertStream(const std::vector<Edge>& edges) {
  std::vector<EdgeUpdate> ops;
  ops.reserve(edges.size());
  for (const Edge& e : edges) ops.push_back({UpdateKind::kInsert, e});
  return ops;
}

}  // namespace

int main() {
  std::printf("=== Figure 11: parameter sensitivity (wechat-mini) ===\n");
  std::printf("(scale factor %.2f)\n", DatasetScale());
  const Dataset ds = MakeWeChatMini();
  const std::vector<EdgeUpdate> stream = InsertStream(ds.edges);

  // (a) dynamic insertion time by batch size ------------------------------
  std::printf("\n--- Fig. 11(a): insertion time by batch size (latch-free, "
              "8 threads) ---\n");
  {
    TopologyStore store;
    ThreadPool pool(8);
    BatchUpdater updater(&store, &pool);
    std::size_t cursor = 0;
    for (int logn = 12; logn <= 17; ++logn) {
      const std::size_t n = 1u << logn;
      if (cursor + n > stream.size()) cursor = 0;
      std::vector<EdgeUpdate> batch(stream.begin() + cursor,
                                    stream.begin() + cursor + n);
      cursor += n;
      Timer t;
      updater.ApplyBatch(std::move(batch));
      std::printf("  batch 2^%-3d %10.2f ms\n", logn, t.ElapsedMillis());
    }
  }

  // (b) insertion time by node capacity -----------------------------------
  std::printf("\n--- Fig. 11(b): dynamic-insertion time by samtree node "
              "capacity (checked inserts, Algorithm 2) ---\n");
  for (int logc = 4; logc <= 12; ++logc) {
    SamtreeStore store(SamtreeConfig{.node_capacity = 1u << logc});
    const double secs = BuildSamtreeStoreChecked(store, ds.edges);
    std::printf("  capacity 2^%-3d %10.3f s\n", logc, secs);
  }

  // (c) concurrent update time by threads ---------------------------------
  std::printf("\n--- Fig. 11(c): concurrent dynamic update by threads ---\n");
  std::printf("  (%u hardware thread(s) available; the paper's downward "
              "trend needs >1 core)\n",
              std::thread::hardware_concurrency());
  std::printf("  %-10s", "threads");
  for (int logn = 12; logn <= 14; ++logn) std::printf("  batch 2^%d", logn);
  std::printf("\n");
  for (std::size_t threads : {1u, 2u, 4u, 8u, 16u}) {
    std::printf("  %-10zu", threads);
    for (int logn = 12; logn <= 14; ++logn) {
      const std::size_t n = 1u << logn;
      // Fresh store pre-loaded with a prefix so updates hit real trees.
      TopologyStore target;
      for (std::size_t i = 0; i < std::min<std::size_t>(ds.edges.size(),
                                                        500000);
           ++i) {
        const Edge& e = ds.edges[i];
        target.AddEdge(e.src, e.dst, e.weight);
      }
      UpdateStreamParams sp;
      sp.num_ops = n;
      sp.insert_fraction = 0.4;
      sp.update_fraction = 0.4;
      sp.seed = 17;
      std::vector<EdgeUpdate> batch = MakeUpdateStream(ds.edges, sp);
      ThreadPool pool(threads);
      BatchUpdater updater(&target, &pool);
      Timer t;
      updater.ApplyBatch(std::move(batch));
      std::printf(" %9.2fms", t.ElapsedMillis());
    }
    std::printf("\n");
  }

  // (d) insertion time by slackness alpha ---------------------------------
  std::printf("\n--- Fig. 11(d): build time by alpha-split slackness ---\n");
  std::printf("  (at this scale splits are a small share of total insert "
              "cost, so the end-to-end\n   trend is mild; the isolated "
              "split-cost column shows the paper's mechanism)\n");
  for (std::uint32_t alpha : {0u, 1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    SamtreeStore store(
        SamtreeConfig{.node_capacity = 256, .alpha = alpha});
    const double secs = BuildSamtreeStore(store, ds.edges);

    // Isolated split cost: partition many overflowing 257-element leaves.
    Xoshiro256 rng(4);
    std::vector<VertexId> proto_ids(257);
    for (auto& v : proto_ids) v = rng.Next();
    std::vector<Weight> proto_w(257, 1.0);
    Timer t;
    for (int rep = 0; rep < 3000; ++rep) {
      auto ids = proto_ids;
      auto w = proto_w;
      AlphaSplit(ids, w, ids.size() / 2, alpha);
    }
    std::printf("  alpha %-6u build %8.3f s    split-only %7.2f ms/3k\n",
                alpha, secs, t.ElapsedMillis());
  }

  std::printf("\npaper shape: (a) grows with batch size; (b) minimum near "
              "capacity 2^8; (c) time falls as threads grow; (d) larger "
              "alpha -> less time\n");
  return 0;
}
