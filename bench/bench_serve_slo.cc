// Online-serving SLO bench (docs/serving.md): an open-loop Zipf request
// mix from 4 tenants is replayed against GraphServer twice — once with
// cross-request batching enabled, once with max_batch=1 (the unbatched
// baseline) — at several arrival rates, while a concurrent ingest thread
// mutates the same cluster with >= 100k edge updates/s.
//
// Latencies are virtual-time: each batch occupies the serving pipeline
// for the executor's virtual cost (RPC rounds + compute), so queueing
// delay at saturation is modelled deterministically and the numbers are
// reproducible on any host. The unbatched baseline pays one full RPC
// round-trip per request; batching amortises that round across every
// coalesced request, which is exactly the effect the paper's serving
// layer exists to capture.
//
// Results land in BENCH_serve_slo.json. The process exits non-zero if
// batching does not beat the unbatched baseline on p99 latency at the
// highest arrival rate — that is the regression gate.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "dist/cluster.h"
#include "pipeline/epoch_coordinator.h"
#include "serve/query_plan.h"
#include "serve/server.h"

using namespace platod2gl;
using namespace platod2gl::bench;
using serve::GraphServer;
using serve::QueryRequest;
using serve::QueryResponse;
using serve::ServeConfig;
using serve::ServeStats;

namespace {

constexpr std::size_t kVertices = 20000;
constexpr std::size_t kDegree = 8;
constexpr std::size_t kShards = 4;
constexpr std::uint32_t kTenants = 4;
constexpr std::size_t kRequestsPerRun = 20000;
constexpr std::uint64_t kIngestTargetPerSec = 100000;

/// Zipf(theta) over [0, n) via a precomputed CDF + binary search.
/// Deterministic given the RNG stream; hot ranks map to low ids.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double theta) : cdf_(n) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[i] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }

  std::size_t Draw(Xoshiro256& rng) const {
    const double u = rng.NextDouble();
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

void PopulateCluster(GraphCluster* cluster) {
  std::vector<EdgeUpdate> batch;
  batch.reserve(4096);
  for (VertexId v = 0; v < kVertices; ++v) {
    for (std::uint64_t k = 1; k <= kDegree; ++k) {
      batch.push_back({UpdateKind::kInsert,
                       Edge{v, (v * 131 + k * 7919) % kVertices,
                            1.0 + static_cast<double>(k), 0}});
      if (batch.size() == 4096) {
        (void)cluster->ApplyBatch(batch);
        batch.clear();
      }
    }
  }
  if (!batch.empty()) (void)cluster->ApplyBatch(batch);
  for (VertexId v = 0; v < kVertices; ++v) {
    const std::size_t s = cluster->partitioner().ShardOf(v);
    cluster->shard(s).store().attributes().SetFeatures(
        v, {static_cast<float>(v % 97), static_cast<float>(v % 31)});
  }
}

/// One pre-generated open-loop request: arrival time from exponential
/// inter-arrivals at `rate_per_sec`, Zipf tenant, Zipf seeds, a plan
/// drawn from the serving mix (2-hop sample / sample+gather /
/// link-prediction negatives).
struct TimedRequest {
  std::uint64_t arrival_us = 0;
  QueryRequest req;
};

std::vector<TimedRequest> MakeWorkload(double rate_per_sec,
                                       std::uint64_t seed) {
  const ZipfSampler seed_zipf(kVertices, 0.99);
  const ZipfSampler tenant_zipf(kTenants, 0.6);
  Xoshiro256 rng(seed);
  std::vector<TimedRequest> out;
  out.reserve(kRequestsPerRun);
  double clock_us = 0.0;
  const double mean_gap_us = 1e6 / rate_per_sec;
  for (std::size_t i = 0; i < kRequestsPerRun; ++i) {
    clock_us += -mean_gap_us * std::log(1.0 - rng.NextDouble());
    TimedRequest tr;
    tr.arrival_us = static_cast<std::uint64_t>(clock_us);
    tr.req.tenant = static_cast<std::uint32_t>(tenant_zipf.Draw(rng));
    tr.req.request_id = i;
    tr.req.rng_seed = SplitMix64(seed ^ (i * 0x9E3779B97F4A7C15ULL)).Next();
    const std::size_t num_seeds = 2 + rng.NextUint64(6);
    for (std::size_t s = 0; s < num_seeds; ++s) {
      tr.req.seeds.push_back(seed_zipf.Draw(rng));
    }
    const std::uint64_t mix = rng.NextUint64(10);
    if (mix < 7) {  // 2-hop neighbourhood
      tr.req.plan.Sample(10).Sample(5, true, 0);
    } else if (mix < 9) {  // 1-hop + feature gather
      tr.req.plan.Sample(10).Gather(0);
    } else {  // link-prediction negatives
      tr.req.plan.Sample(10).NegativeSample(32, 0, kVertices);
    }
    out.push_back(std::move(tr));
  }
  return out;
}

struct RunResult {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double served_per_virtual_sec = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t batches = 0;
  double mean_batch = 0.0;
  std::uint64_t rpc_rounds = 0;
  double ingest_per_sec = 0.0;
};

RunResult RunLoad(const std::vector<TimedRequest>& workload,
                  std::size_t max_batch) {
  GraphCluster cluster(ClusterConfig{.num_shards = kShards});
  PopulateCluster(&cluster);
  EpochCoordinator epochs;

  ServeConfig cfg;
  cfg.num_tenants = kTenants;
  cfg.admission.max_in_flight = 512;
  cfg.admission.tenant_quota = 256;
  cfg.admission.policy = serve::AdmissionPolicy::kShedOldest;
  cfg.batcher.max_batch = max_batch;
  cfg.batcher.window_us = max_batch > 1 ? 400 : 0;
  GraphServer server(&cluster, &epochs, cfg);

  // Concurrent ingest: full-rate edge churn through the cluster's real
  // update path while the serving loop runs. Wall-clock rate is
  // reported; the serving latencies themselves are virtual-time.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ingested{0};
  std::thread ingest([&] {
    Xoshiro256 irng(0xFEED);
    std::vector<EdgeUpdate> batch(512);
    // order: stop flag polled per batch; join() below synchronizes.
    while (!stop.load(std::memory_order_relaxed)) {
      for (EdgeUpdate& u : batch) {
        const VertexId src = irng.NextUint64(kVertices);
        const VertexId dst = irng.NextUint64(kVertices);
        u.kind = irng.NextUint64(4) == 0 ? UpdateKind::kDelete
                                         : UpdateKind::kInsert;
        u.edge = Edge{src, dst, 1.0, 0};
      }
      (void)cluster.ApplyBatch(batch);
      // order: stat tally, read for reporting only after join().
      ingested.fetch_add(batch.size(), std::memory_order_relaxed);
    }
  });

  Timer wall;
  for (const TimedRequest& tr : workload) {
    (void)server.Submit(tr.req, tr.arrival_us);
    server.Pump(tr.arrival_us);
  }
  const std::uint64_t end_us = workload.back().arrival_us + 1;
  server.Drain(end_us);
  const double wall_secs = wall.ElapsedSeconds();
  stop.store(true);
  ingest.join();

  // Read through the server's metric registry — the same page `pd2gl
  // metrics` exports — so the JSON the perf trajectory tracks is the
  // exported series, not a parallel bookkeeping path. The latency
  // percentiles come from the registered pd2gl_serve_latency_nanos
  // histogram for the same reason.
  const obs::RegistrySnapshot snap = server.metrics().Snapshot();
  const HistogramSnapshot lat = snap.Hist("pd2gl_serve_latency_nanos");
  RunResult r;
  r.p50_us = static_cast<double>(lat.PercentileNanos(50)) / 1e3;
  r.p99_us = static_cast<double>(lat.PercentileNanos(99)) / 1e3;
  r.completed = snap.Value("pd2gl_serve_completed");
  r.shed = snap.Value("pd2gl_serve_shed");
  r.rejected = snap.Value("pd2gl_serve_rejected");
  r.batches = snap.Value("pd2gl_serve_batches");
  r.mean_batch =
      r.batches == 0
          ? 0.0
          : static_cast<double>(snap.Value("pd2gl_serve_batched_requests")) /
                static_cast<double>(r.batches);
  r.rpc_rounds = snap.Value("pd2gl_serve_rpc_rounds");
  const double virtual_secs =
      static_cast<double>(server.busy_until_us()) / 1e6;
  r.served_per_virtual_sec =
      virtual_secs > 0.0
          ? static_cast<double>(r.completed - r.shed) / virtual_secs
          : 0.0;
  r.ingest_per_sec =
      wall_secs > 0.0
          ? static_cast<double>(ingested.load()) / wall_secs
          : 0.0;
  return r;
}

}  // namespace

int main() {
  std::printf("serve SLO bench: %zu requests, %u tenants (Zipf 0.6), "
              "Zipf(0.99) seeds over %zu vertices, %zu shards\n",
              kRequestsPerRun, kTenants, kVertices, kShards);
  std::printf("%-10s %-9s %10s %10s %10s %9s %9s %9s %11s %12s\n", "load(rps)",
              "mode", "p50(us)", "p99(us)", "served/s", "shed", "rejected",
              "batches", "mean-batch", "ingest/s");

  JsonRecords json("serve_slo");
  const std::vector<double> loads = {2000.0, 8000.0, 32000.0};
  double best_batched_p99 = 0.0;
  double best_unbatched_p99 = 0.0;
  bool ingest_ok = true;

  for (const double load : loads) {
    const auto workload =
        MakeWorkload(load, /*seed=*/0xD2610000 + (std::uint64_t)load);
    for (const std::size_t max_batch : {std::size_t{32}, std::size_t{1}}) {
      const char* mode = max_batch > 1 ? "batched" : "unbatched";
      const RunResult r = RunLoad(workload, max_batch);
      std::printf("%-10.0f %-9s %10.1f %10.1f %10.0f %9llu %9llu %9llu %11.1f "
                  "%12.0f\n",
                  load, mode, r.p50_us, r.p99_us, r.served_per_virtual_sec,
                  (unsigned long long)r.shed,
                  (unsigned long long)r.rejected,
                  (unsigned long long)r.batches, r.mean_batch,
                  r.ingest_per_sec);
      json.Rec()
          .Num("load_rps", load)
          .Str("mode", mode)
          .Num("p50_us", r.p50_us)
          .Num("p99_us", r.p99_us)
          .Num("served_per_virtual_sec", r.served_per_virtual_sec)
          .Num("completed", r.completed)
          .Num("shed", r.shed)
          .Num("rejected", r.rejected)
          .Num("batches", r.batches)
          .Num("mean_batch", r.mean_batch)
          .Num("rpc_rounds", r.rpc_rounds)
          .Num("ingest_updates_per_sec", r.ingest_per_sec);
      if (load == loads.back()) {
        (max_batch > 1 ? best_batched_p99 : best_unbatched_p99) = r.p99_us;
      }
      if (r.ingest_per_sec < static_cast<double>(kIngestTargetPerSec)) {
        ingest_ok = false;
      }
    }
  }

  if (json.WriteFile("BENCH_serve_slo.json")) {
    std::printf("wrote BENCH_serve_slo.json\n");
  } else {
    std::fprintf(stderr, "failed to write BENCH_serve_slo.json\n");
  }
  if (!ingest_ok) {
    // Host-dependent soft target: the virtual-time latency gate below is
    // what protects the serving layer; a slow shared host only means the
    // concurrent-churn condition was lighter than advertised.
    std::printf("note: concurrent ingest below %llu updates/s on this "
                "host\n",
                (unsigned long long)kIngestTargetPerSec);
  }

  // Regression gate: at the highest arrival rate, cross-request batching
  // must beat the unbatched baseline on p99.
  if (!(best_batched_p99 < best_unbatched_p99)) {
    std::fprintf(stderr,
                 "FAIL: batched p99 %.1fus does not beat unbatched p99 "
                 "%.1fus at %.0f req/s\n",
                 best_batched_p99, best_unbatched_p99, loads.back());
    return 1;
  }
  std::printf("gate ok: batched p99 %.1fus < unbatched p99 %.1fus at "
              "%.0f req/s\n",
              best_batched_p99, best_unbatched_p99, loads.back());
  return 0;
}
